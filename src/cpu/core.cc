#include "cpu/core.hh"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/logging.hh"
#include "obs/metrics.hh"

namespace uscope::cpu
{

namespace
{

double
asDouble(std::uint64_t bits)
{
    return std::bit_cast<double>(bits);
}

std::uint64_t
asBits(double value)
{
    return std::bit_cast<std::uint64_t>(value);
}

bool
isSubnormal(double value)
{
    return std::fpclassify(value) == FP_SUBNORMAL;
}

} // anonymous namespace

Core::Core(mem::PhysMem &mem, mem::Hierarchy &hierarchy, vm::Mmu &mmu,
           const CoreConfig &config, std::uint64_t seed)
    : mem_(mem), hierarchy_(hierarchy), mmu_(mmu), config_(config),
      rng_(seed), contexts_(config.numContexts),
      predictor_(config.predictorEntries)
{
    for (Context &ctx : contexts_) {
        ctx.lastIntWriter.fill(-1);
        ctx.lastFpWriter.fill(-1);
    }
}

void
Core::copyStateFrom(const Core &other)
{
    rng_ = other.rng_;
    cycle_ = other.cycle_;
    contexts_ = other.contexts_;
    ports_ = other.ports_;
    predictor_ = other.predictor_;
    issuedThisCycle_ = other.issuedThisCycle_;
}

void
Core::reset(std::uint64_t seed)
{
    rng_.seed(seed);
    cycle_ = 0;
    contexts_.assign(config_.numContexts, Context{});
    for (Context &ctx : contexts_) {
        ctx.lastIntWriter.fill(-1);
        ctx.lastFpWriter.fill(-1);
    }
    ports_.reset();
    predictor_.reset();
    issuedThisCycle_ = 0;
}

Core::Context &
Core::ctxAt(unsigned ctx)
{
    if (ctx >= contexts_.size())
        panic("Core: bad context id %u", ctx);
    return contexts_[ctx];
}

const Core::Context &
Core::ctxAt(unsigned ctx) const
{
    return const_cast<Core *>(this)->ctxAt(ctx);
}

void
Core::setFaultHandler(FaultHandler handler)
{
    faultHandler_ = std::move(handler);
}

void
Core::setRdrandSource(RdrandSource source)
{
    rdrandSource_ = std::move(source);
}

void
Core::setMemProbe(MemProbe probe)
{
    memProbe_ = std::move(probe);
}

void
Core::setIssueJitterHook(IssueJitterHook hook)
{
    issueJitter_ = std::move(hook);
}

void
Core::setObserver(obs::Observer *observer)
{
    obs_ = observer;
    if (obs_)
        obs_->trace.bindClock(&cycle_);
}

void
Core::exportMetrics(obs::MetricRegistry &registry) const
{
    CtxStats sum;
    for (const Context &ctx : contexts_) {
        sum.fetched += ctx.stats.fetched;
        sum.retired += ctx.stats.retired;
        sum.squashed += ctx.stats.squashed;
        sum.pageFaults += ctx.stats.pageFaults;
        sum.mispredicts += ctx.stats.mispredicts;
        sum.txAborts += ctx.stats.txAborts;
        sum.stallCycles += ctx.stats.stallCycles;
    }
    registry.counter("core.fetched").set(sum.fetched);
    registry.counter("core.retired").set(sum.retired);
    registry.counter("core.rob.squashes").set(sum.squashed);
    registry.counter("core.page_faults").set(sum.pageFaults);
    registry.counter("core.mispredicts").set(sum.mispredicts);
    registry.counter("core.tx_aborts").set(sum.txAborts);
    registry.counter("core.stall_cycles").set(sum.stallCycles);
    registry.gauge("core.cycles").set(static_cast<double>(cycle_));
    for (unsigned port = 0; port < numPorts; ++port)
        registry.counter(format("core.ports.p%u.issues", port))
            .set(ports_.issues(port));
}

void
Core::startContext(unsigned ctx_id,
                   std::shared_ptr<const Program> program,
                   std::uint64_t entry, Pcid pcid, PAddr pt_root,
                   std::uint64_t pc_bias)
{
    Context &ctx = ctxAt(ctx_id);
    ctx.program = std::move(program);
    ctx.stream = ctx.program ? &ctx.program->decoded() : nullptr;
    ctx.fetchPc = entry;
    ctx.fetchStopped = false;
    ctx.pcid = pcid;
    ctx.ptRoot = pt_root;
    ctx.pcBias = pc_bias;
    ctx.stallUntil = 0;
    ctx.rob.clear();
    ctx.lastIntWriter.fill(-1);
    ctx.lastFpWriter.fill(-1);
    ctx.inTx = false;
    ctx.txPendingAbort = false;
    ctx.txStores.clear();
    ctx.txWriteSet.clear();
    ctx.state = CtxState::Running;
}

void
Core::stopContext(unsigned ctx_id)
{
    Context &ctx = ctxAt(ctx_id);
    squashAll(ctx_id);
    ctx.program.reset();
    ctx.stream = nullptr;
    ctx.state = CtxState::Idle;
}

CtxState
Core::contextState(unsigned ctx_id) const
{
    return ctxAt(ctx_id).state;
}

bool
Core::halted(unsigned ctx_id) const
{
    return ctxAt(ctx_id).state == CtxState::Halted;
}

void
Core::stallContext(unsigned ctx_id, Cycles duration)
{
    Context &ctx = ctxAt(ctx_id);
    ctx.state = CtxState::Stalled;
    ctx.stallUntil = std::max(ctx.stallUntil, cycle_ + duration);
    ctx.stats.stallCycles += duration;
}

void
Core::preemptContext(unsigned ctx_id, Cycles penalty)
{
    Context &ctx = ctxAt(ctx_id);
    if (ctx.state == CtxState::Idle || ctx.state == CtxState::Halted)
        return;

    if (ctx.inTx) {
        // A context switch aborts a transaction (TSX semantics); the
        // abort path already redirects fetch to the abort handler.
        doTxAbort(ctx_id);
    } else {
        // Precise: resume at the oldest in-flight instruction, like a
        // fault squash (stores only write at retirement, so in-flight
        // work re-executes safely).
        if (!ctx.rob.empty()) {
            ctx.fetchPc = ctx.rob.front().pc;
            ctx.fetchStopped = false;
        }
        squashAll(ctx_id);
        if (config_.fenceOnPipelineFlush)
            ctx.serializeNext = true;
    }
    stallContext(ctx_id, penalty);
}

void
Core::redirectContext(unsigned ctx_id, std::uint64_t pc)
{
    Context &ctx = ctxAt(ctx_id);
    squashAll(ctx_id);
    ctx.fetchPc = pc;
    ctx.fetchStopped = false;
    if (ctx.state == CtxState::Halted)
        ctx.state = CtxState::Running;
}

std::uint64_t
Core::readIntReg(unsigned ctx_id, Reg reg) const
{
    return ctxAt(ctx_id).intRegs.at(reg);
}

void
Core::writeIntReg(unsigned ctx_id, Reg reg, std::uint64_t value)
{
    ctxAt(ctx_id).intRegs.at(reg) = value;
}

double
Core::readFpReg(unsigned ctx_id, Reg reg) const
{
    return asDouble(ctxAt(ctx_id).fpRegs.at(reg));
}

void
Core::writeFpReg(unsigned ctx_id, Reg reg, double value)
{
    ctxAt(ctx_id).fpRegs.at(reg) = asBits(value);
}

const CtxStats &
Core::stats(unsigned ctx_id) const
{
    return ctxAt(ctx_id).stats;
}

std::size_t
Core::robOccupancy(unsigned ctx_id) const
{
    return ctxAt(ctx_id).rob.size();
}

bool
Core::inTransaction(unsigned ctx_id) const
{
    return ctxAt(ctx_id).inTx;
}

std::uint64_t
Core::biasedPc(const Context &ctx, std::uint64_t pc) const
{
    return ctx.pcBias + pc;
}

const Core::RobEntry *
Core::findEntry(const Context &ctx, std::uint64_t seq) const
{
    // The ROB is sorted by sequence number (dispatch appends
    // monotonically; retire/squash pop the ends), so binary search
    // finds an entry in O(log n).  Note the numbers are not
    // contiguous: squashed sequence numbers are never reused.
    if (ctx.rob.empty() || seq < ctx.rob.front().seq ||
        seq > ctx.rob.back().seq) {
        return nullptr;
    }
    const auto it = std::lower_bound(
        ctx.rob.begin(), ctx.rob.end(), seq,
        [](const RobEntry &entry, std::uint64_t want) {
            return entry.seq < want;
        });
    return (it != ctx.rob.end() && it->seq == seq) ? &*it : nullptr;
}

bool
Core::resolveSource(const Context &ctx, std::int64_t dep, Reg reg,
                    bool fp, std::uint64_t &value) const
{
    if (dep < 0) {
        value = fp ? ctx.fpRegs[reg] : ctx.intRegs[reg];
        return true;
    }
    const RobEntry *producer =
        findEntry(ctx, static_cast<std::uint64_t>(dep));
    if (!producer) {
        // Producer already retired: its value reached the regfile.
        value = fp ? ctx.fpRegs[reg] : ctx.intRegs[reg];
        return true;
    }
    if (producer->state != RobEntry::State::Done ||
        producer->finishCycle > cycle_) {
        return false;
    }
    // A faulted load produces no data: its dependents never become
    // ready ("instructions that are dependent on the replay handle do
    // not execute", §4.1.1) and die in the eventual squash.
    if (producer->faulted)
        return false;
    value = producer->result;
    return true;
}

void
Core::rebuildWriterTables(Context &ctx)
{
    ctx.lastIntWriter.fill(-1);
    ctx.lastFpWriter.fill(-1);
    for (const RobEntry &entry : ctx.rob) {
        if (entry.dec->writesInt())
            ctx.lastIntWriter[entry.inst.rd] =
                static_cast<std::int64_t>(entry.seq);
        if (entry.dec->writesFp())
            ctx.lastFpWriter[entry.inst.rd] =
                static_cast<std::int64_t>(entry.seq);
    }
}

void
Core::squashYounger(unsigned ctx_id, std::int64_t keep_seq)
{
    Context &ctx = ctxAt(ctx_id);
    std::uint64_t popped = 0;
    std::uint64_t oldest_pc = 0;
    while (!ctx.rob.empty() &&
           static_cast<std::int64_t>(ctx.rob.back().seq) > keep_seq) {
        ++ctx.stats.squashed;
        oldest_pc = ctx.rob.back().pc;
        ctx.rob.pop_back();
        ++popped;
    }
    if (popped && obs::tracing(obs_))
        obs_->trace.record(obs::EventKind::Squash,
                           static_cast<std::uint8_t>(ctx_id),
                           static_cast<std::uint16_t>(popped),
                           oldest_pc);
    rebuildWriterTables(ctx);
}

void
Core::squashAll(unsigned ctx_id)
{
    squashYounger(ctx_id, -1);
}

void
Core::notifyLineEvicted(PAddr paddr)
{
    const PAddr line = lineBase(paddr);
    for (Context &ctx : contexts_)
        if (ctx.inTx && ctx.txWriteSet.count(line))
            ctx.txPendingAbort = true;
}

bool
Core::abortTransaction(unsigned ctx_id)
{
    Context &ctx = ctxAt(ctx_id);
    if (!ctx.inTx)
        return false;
    ctx.txPendingAbort = true;
    return true;
}

void
Core::doTxAbort(unsigned ctx_id)
{
    Context &ctx = ctxAt(ctx_id);
    if (!ctx.inTx)
        panic("doTxAbort: context %u not in a transaction", ctx_id);
    squashAll(ctx_id);
    ctx.intRegs = ctx.txIntRegs;
    ctx.fpRegs = ctx.txFpRegs;
    ctx.txStores.clear();
    ctx.txWriteSet.clear();
    ctx.inTx = false;
    ctx.txPendingAbort = false;
    ctx.fetchPc = ctx.txAbortPc;
    ctx.fetchStopped = false;
    ++ctx.stats.txAborts;
}

void
Core::tick()
{
    // Wake stalled contexts and fire pending transaction aborts.
    for (unsigned i = 0; i < contexts_.size(); ++i) {
        Context &ctx = contexts_[i];
        if (ctx.state == CtxState::Stalled && cycle_ >= ctx.stallUntil)
            ctx.state = CtxState::Running;
        if (ctx.inTx && ctx.txPendingAbort)
            doTxAbort(i);
    }

    ports_.newCycle();
    issuedThisCycle_ = 0;

    doCompletions();
    doRetire();
    doIssue();
    doFetch();

    ++cycle_;
}

bool
Core::runUntil(const std::function<bool()> &pred, Cycles max_cycles)
{
    const Cycles limit = cycle_ + max_cycles;
    while (cycle_ < limit) {
        if (pred())
            return true;
        tick();
    }
    return pred();
}

Cycles
Core::nextEventCycle() const
{
    // Every term below mirrors one state-changing path of tick(); the
    // derivation of why the cycles in between are provably inert is in
    // DESIGN.md §10.  When in doubt a path must return cycle_ ("an
    // event may happen right now") — that is always correct, merely
    // slower.
    Cycles next = kNoEventCycle;
    const bool trace_on = obs::tracing(obs_);
    for (const Context &ctx : contexts_) {
        // Pending transaction aborts fire at the top of the next tick.
        if (ctx.inTx && ctx.txPendingAbort)
            return cycle_;

        if (ctx.state == CtxState::Stalled)
            next = std::min(next, std::max(ctx.stallUntil, cycle_));

        const bool running = ctx.state == CtxState::Running;

        // Fetch dispatches every cycle it can.
        if (running && ctx.program && !ctx.fetchStopped &&
            ctx.rob.size() < config_.robPerContext) {
            return cycle_;
        }

        if (ctx.rob.empty())
            continue;

        // Retirement (or the fault a Done-but-faulted head raises)
        // is pending as soon as the head is Done; doRetire processes
        // heads regardless of context state.
        if (ctx.rob.front().state == RobEntry::State::Done)
            return cycle_;

        // Completions fire when an executing op's latency elapses —
        // scanned for every entry, in every context state, exactly
        // like doCompletions.
        for (const RobEntry &entry : ctx.rob) {
            if (entry.state == RobEntry::State::Executing)
                next = std::min(next,
                                std::max(entry.finishCycle, cycle_));
        }

        if (!running)
            continue;

        // Issue: mirror doIssue's scan (scheduler window, stop past a
        // barrier).  An entry whose operands and memory ordering are
        // clear can only be waiting on a port; ports free at known
        // busyUntil cycles.  With tracing enabled every failed port
        // attempt records a PortConflict event, so those cycles are
        // events themselves and cannot be skipped.
        unsigned examined = 0;
        for (const RobEntry &entry : ctx.rob) {
            if (++examined > config_.schedWindow)
                break;
            if (entry.state == RobEntry::State::Waiting &&
                issueReady(ctx, entry)) {
                if (trace_on)
                    return cycle_;
                const PortChoices choices = entry.dec->ports;
                Cycles port_free = kNoEventCycle;
                if (choices.first != 0xFF)
                    port_free = std::min(
                        port_free, ports_.busyUntil(choices.first));
                if (choices.second != 0xFF)
                    port_free = std::min(
                        port_free, ports_.busyUntil(choices.second));
                next = std::min(next, std::max(port_free, cycle_));
            }
            if (entry.dec->isBarrier(config_.rdrandSerializing) ||
                entry.flushBarrier) {
                break;
            }
        }
    }
    return next;
}

void
Core::fastForwardTo(Cycles target)
{
    if (target < cycle_)
        panic("Core::fastForwardTo: target %llu behind cycle %llu",
              static_cast<unsigned long long>(target),
              static_cast<unsigned long long>(cycle_));
    // Each skipped tick would have drawn once for the SMT issue
    // rotation (doIssue does so unconditionally); burn the same draws
    // so the stream stays aligned with a cycle-by-cycle run.
    const auto n = static_cast<std::uint64_t>(contexts_.size());
    for (Cycles c = cycle_; c < target; ++c)
        (void)rng_.below(n);
    cycle_ = target;
}

void
Core::reseedAdvanced(std::uint64_t seed, Cycles ticks)
{
    rng_.seed(seed);
    // Same consumption as ticks-many doIssue/fastForwardTo below(n)
    // draws — rejection retries and all — so the position is
    // bit-equal to a seeded core that ticked.
    rng_.discardBelow(static_cast<std::uint64_t>(contexts_.size()),
                      ticks);
}

void
Core::doCompletions()
{
    for (unsigned ctx_id = 0; ctx_id < contexts_.size(); ++ctx_id) {
        Context &ctx = contexts_[ctx_id];
        for (std::size_t i = 0; i < ctx.rob.size(); ++i) {
            RobEntry &entry = ctx.rob[i];
            if (entry.state != RobEntry::State::Executing ||
                entry.finishCycle > cycle_) {
                continue;
            }
            entry.state = RobEntry::State::Done;

            if (entry.dec->isCondBranch() && !entry.mispredictHandled) {
                entry.mispredictHandled = true;
                predictor_.update(biasedPc(ctx, entry.pc),
                                  entry.actualTaken);
                if (entry.actualTaken != entry.predictedTaken) {
                    ++ctx.stats.mispredicts;
                    squashYounger(ctx_id,
                                  static_cast<std::int64_t>(entry.seq));
                    ctx.fetchPc = entry.actualTaken
                        ? entry.inst.target
                        : entry.pc + 1;
                    ctx.fetchStopped = false;
                    if (config_.fenceOnPipelineFlush)
                        ctx.serializeNext = true;
                    // Everything younger is gone; the scan index is
                    // still valid because this entry survives.
                }
            }
        }
    }
}

bool
Core::retireOne(unsigned ctx_id)
{
    Context &ctx = contexts_[ctx_id];
    if (ctx.rob.empty())
        return false;
    RobEntry &head = ctx.rob.front();
    if (head.state != RobEntry::State::Done ||
        head.finishCycle > cycle_) {
        return false;
    }

    if (head.faulted) {
        handleFaultAtHead(ctx_id, head);
        return false;
    }

    const Instruction &inst = head.inst;
    const DecodedInst &dec = *head.dec;

    if (obs::tracing(obs_))
        obs_->trace.record(obs::EventKind::Retire,
                           static_cast<std::uint8_t>(ctx_id),
                           static_cast<std::uint16_t>(inst.op),
                           head.pc);

    if (dec.writesInt())
        ctx.intRegs[inst.rd] = head.result;
    if (dec.writesFp())
        ctx.fpRegs[inst.rd] = head.result;

    if (dec.isStore() && head.storeResolved) {
        if (!head.storeDataResolved) {
            // STD at retirement: the producer is older, hence already
            // retired, so the register file holds the value.
            std::uint64_t value = 0;
            resolveSource(ctx, -1, inst.rs2, dec.readsFp2(), value);
            head.storeValue = (head.storeLen == 4)
                ? (value & 0xFFFFFFFFull)
                : value;
            head.storeDataResolved = true;
        }
        if (ctx.inTx) {
            ctx.txStores.push_back(
                {head.storePa, head.storeValue, head.storeLen});
            ctx.txWriteSet.insert(lineBase(head.storePa));
        } else {
            mem_.write(head.storePa, head.storeValue, head.storeLen);
        }
    }

    switch (inst.op) {
      case Op::Txbegin:
        ctx.inTx = true;
        ctx.txAbortPc = inst.target;
        ctx.txIntRegs = ctx.intRegs;
        ctx.txFpRegs = ctx.fpRegs;
        ctx.txStores.clear();
        ctx.txWriteSet.clear();
        break;
      case Op::Txend:
        if (ctx.inTx) {
            for (const TxStore &store : ctx.txStores)
                mem_.write(store.pa, store.value, store.len);
            ctx.txStores.clear();
            ctx.txWriteSet.clear();
            ctx.inTx = false;
        }
        break;
      case Op::Halt:
        ctx.rob.pop_front();
        ++ctx.stats.retired;
        squashAll(ctx_id);
        ctx.state = CtxState::Halted;
        return false;
      default:
        break;
    }

    ctx.rob.pop_front();
    ++ctx.stats.retired;
    return true;
}

void
Core::doRetire()
{
    for (unsigned ctx_id = 0; ctx_id < contexts_.size(); ++ctx_id) {
        for (unsigned n = 0; n < config_.retireWidth; ++n)
            if (!retireOne(ctx_id))
                break;
    }
}

void
Core::handleFaultAtHead(unsigned ctx_id, const RobEntry &head)
{
    Context &ctx = contexts_[ctx_id];
    ++ctx.stats.pageFaults;

    if (obs::tracing(obs_))
        obs_->trace.record(obs::EventKind::PageFault,
                           static_cast<std::uint8_t>(ctx_id), 0,
                           head.faultVa);

    const FaultInfo info{ctx_id, head.faultVa, head.pc,
                         head.dec->isStore()};

    if (ctx.inTx) {
        // A fault inside a transaction aborts it instead of trapping
        // (TSX semantics; the basis of the T-SGX defense, §8).
        doTxAbort(ctx_id);
        return;
    }

    squashAll(ctx_id);
    ctx.fetchPc = head.pc;  // Precise: re-execute the faulting op.
    ctx.fetchStopped = false;
    if (config_.fenceOnPipelineFlush)
        ctx.serializeNext = true;

    if (!faultHandler_)
        panic("page fault at pc %llu va %#llx with no handler installed",
              static_cast<unsigned long long>(info.pc),
              static_cast<unsigned long long>(info.va));
    faultHandler_(info);
}

void
Core::executeMemOp(unsigned ctx_id, RobEntry &entry, Cycles &latency)
{
    Context &ctx = contexts_[ctx_id];
    const Instruction &inst = entry.inst;
    const DecodedInst &dec = *entry.dec;

    std::uint64_t base = 0;
    resolveSource(ctx, entry.dep1, inst.rs1, false, base);
    const VAddr va = base + static_cast<std::uint64_t>(inst.imm);

    latency += config_.aguLatency;

    const vm::TranslateResult xlate =
        mmu_.translate(va, ctx.pcid, ctx.ptRoot);
    latency += xlate.latency;

    if (memProbe_)
        memProbe_(ctx_id, va, xlate.fault ? 0 : xlate.paddr,
                  dec.isStore(), xlate.fault);

    if (xlate.fault) {
        entry.faulted = true;
        entry.faultVa = va;
        return;
    }

    const unsigned len = (inst.op == Op::Ld32 || inst.op == Op::St32)
        ? 4 : 8;

    if (dec.isStore()) {
        entry.storeResolved = true;
        entry.storeVa = va;
        entry.storePa = xlate.paddr;
        entry.storeLen = len;
        std::uint64_t value = 0;
        if (resolveSource(ctx, entry.dep2, inst.rs2,
                          dec.readsFp2(), value)) {
            entry.storeDataResolved = true;
            entry.storeValue =
                (len == 4) ? (value & 0xFFFFFFFFull) : value;
        }
        latency += 1;
        return;
    }

    // Load.  Exact-match forwarding from the youngest older store is
    // the fast path; otherwise read memory and byte-merge any
    // overlapping older stores (retired transactional stores first,
    // then in-flight ROB stores in program order), which handles
    // partial-width overlap precisely.
    for (auto it = ctx.rob.rbegin(); it != ctx.rob.rend(); ++it) {
        if (it->seq >= entry.seq)
            continue;
        if (!it->dec->isStore() || !it->storeDataResolved)
            continue;
        if (it->storeVa == va && it->storeLen == len) {
            entry.result = it->storeValue;
            latency += config_.forwardLatency;
            return;
        }
    }

    const mem::AccessResult access = hierarchy_.access(xlate.paddr);
    latency += access.latency;
    std::uint64_t value = mem_.read(xlate.paddr, len);

    auto merge_bytes = [&](std::uint64_t store_base,
                           std::uint64_t store_value,
                           unsigned store_len,
                           std::uint64_t load_base) {
        bool merged = false;
        for (unsigned i = 0; i < store_len; ++i) {
            const std::uint64_t byte_addr = store_base + i;
            if (byte_addr < load_base || byte_addr >= load_base + len)
                continue;
            const unsigned shift =
                static_cast<unsigned>(byte_addr - load_base) * 8;
            value = (value & ~(0xFFull << shift)) |
                    (((store_value >> (8 * i)) & 0xFF) << shift);
            merged = true;
        }
        return merged;
    };

    bool forwarded = false;
    for (const TxStore &store : ctx.txStores)
        forwarded |= merge_bytes(store.pa, store.value, store.len,
                                 xlate.paddr);
    for (const RobEntry &other : ctx.rob) {
        if (other.seq >= entry.seq)
            break;
        if (!other.dec->isStore() || !other.storeDataResolved)
            continue;
        forwarded |= merge_bytes(other.storeVa, other.storeValue,
                                 other.storeLen, va);
    }
    if (forwarded)
        latency += config_.forwardLatency;
    entry.result = value;
}

void
Core::executeEntry(unsigned ctx_id, RobEntry &entry, Cycles &latency)
{
    Context &ctx = contexts_[ctx_id];
    const Instruction &inst = entry.inst;
    const DecodedInst &dec = *entry.dec;

    std::uint64_t s1 = 0;
    std::uint64_t s2 = 0;
    if (dec.readsSrc1())
        resolveSource(ctx, entry.dep1, inst.rs1, dec.readsFp1(), s1);
    if (dec.readsSrc2())
        resolveSource(ctx, entry.dep2, inst.rs2, dec.readsFp2(), s2);

    latency = config_.aluLatency;

    switch (inst.op) {
      case Op::Nop:
      case Op::Fence:
      case Op::Txbegin:
      case Op::Txend:
      case Op::Halt:
        break;
      case Op::Movi:
        entry.result = static_cast<std::uint64_t>(inst.imm);
        break;
      case Op::Mov:
        entry.result = s1;
        break;
      case Op::Add:
        entry.result = s1 + s2;
        break;
      case Op::Addi:
        entry.result = s1 + static_cast<std::uint64_t>(inst.imm);
        break;
      case Op::Sub:
        entry.result = s1 - s2;
        break;
      case Op::And:
        entry.result = s1 & s2;
        break;
      case Op::Andi:
        entry.result = s1 & static_cast<std::uint64_t>(inst.imm);
        break;
      case Op::Or:
        entry.result = s1 | s2;
        break;
      case Op::Xor:
        entry.result = s1 ^ s2;
        break;
      case Op::Shli:
        entry.result = s1 << (inst.imm & 63);
        break;
      case Op::Shri:
        entry.result = s1 >> (inst.imm & 63);
        break;
      case Op::Mul:
        entry.result = s1 * s2;
        latency = config_.mulLatency;
        break;
      case Op::Div:
        entry.result = s2 ? s1 / s2 : ~std::uint64_t{0};
        latency = config_.divLatency;
        break;
      case Op::Fmovi:
        entry.result = static_cast<std::uint64_t>(inst.imm);
        break;
      case Op::Fmov:
        entry.result = s1;
        break;
      case Op::Fadd:
        entry.result = asBits(asDouble(s1) + asDouble(s2));
        latency = config_.fmulLatency;
        break;
      case Op::Fmul:
        entry.result = asBits(asDouble(s1) * asDouble(s2));
        latency = config_.fmulLatency;
        break;
      case Op::Fdiv: {
        const double a = asDouble(s1);
        const double b = asDouble(s2);
        const double q = a / b;
        entry.result = asBits(q);
        latency = (isSubnormal(a) || isSubnormal(b) || isSubnormal(q))
            ? config_.fdivSubnormalLatency
            : config_.fdivLatency;
        break;
      }
      case Op::Ld:
      case Op::Ld32:
      case Op::Ldf:
      case Op::St:
      case Op::St32:
      case Op::Stf:
        latency = 0;
        executeMemOp(ctx_id, entry, latency);
        break;
      case Op::Jmp:
        entry.actualTaken = true;
        break;
      case Op::Beq:
        entry.actualTaken = s1 == s2;
        break;
      case Op::Bne:
        entry.actualTaken = s1 != s2;
        break;
      case Op::Blt:
        entry.actualTaken = static_cast<std::int64_t>(s1) <
                            static_cast<std::int64_t>(s2);
        break;
      case Op::Bge:
        entry.actualTaken = static_cast<std::int64_t>(s1) >=
                            static_cast<std::int64_t>(s2);
        break;
      case Op::Rdtsc:
        entry.result = cycle_;
        latency = config_.rdtscLatency;
        break;
      case Op::Rdrand:
        entry.result = rdrandSource_ ? rdrandSource_() : rng_.next();
        latency = config_.rdrandLatency;
        break;
    }

    if (latency == 0)
        latency = 1;
}

bool
Core::issueReady(const Context &ctx, const RobEntry &entry) const
{
    const Instruction &inst = entry.inst;
    const DecodedInst &dec = *entry.dec;

    // Operand readiness.  Stores are two-phase: the address (rs1)
    // must be ready at issue, but the data (rs2) may arrive as late
    // as retirement — mirroring separate STA/STD micro-ops.
    std::uint64_t scratch = 0;
    if (dec.readsSrc1() &&
        !resolveSource(ctx, entry.dep1, inst.rs1, dec.readsFp1(),
                       scratch)) {
        return false;
    }
    if (dec.readsSrc2() && !dec.isStore() &&
        !resolveSource(ctx, entry.dep2, inst.rs2, dec.readsFp2(),
                       scratch)) {
        return false;
    }

    // Load ordering hazards: wait while any older store's address is
    // still unknown (addresses resolve within a few cycles), or while
    // an older overlapping store's *data* has not been produced yet.
    if (dec.isLoad()) {
        std::uint64_t base = 0;
        resolveSource(ctx, entry.dep1, inst.rs1, false, base);
        const VAddr load_va =
            base + static_cast<std::uint64_t>(inst.imm);
        const unsigned load_len = inst.op == Op::Ld32 ? 4 : 8;
        for (const RobEntry &other : ctx.rob) {
            if (other.seq >= entry.seq)
                break;
            if (!other.dec->isStore() || other.faulted)
                continue;
            if (!other.storeResolved)
                return false;
            const bool overlap =
                other.storeVa < load_va + load_len &&
                load_va < other.storeVa + other.storeLen;
            if (overlap && !other.storeDataResolved)
                return false;
        }
    }
    return true;
}

bool
Core::tryIssue(unsigned ctx_id, RobEntry &entry)
{
    Context &ctx = contexts_[ctx_id];
    const Instruction &inst = entry.inst;
    const DecodedInst &dec = *entry.dec;

    if (!issueReady(ctx, entry))
        return false;

    // Port availability (shared across SMT contexts — the contention
    // channel).
    const PortChoices choices = dec.ports;
    unsigned port = numPorts;
    if (choices.first != 0xFF && ports_.canIssue(choices.first, cycle_))
        port = choices.first;
    else if (choices.second != 0xFF &&
             ports_.canIssue(choices.second, cycle_))
        port = choices.second;
    if (port == numPorts) {
        if (obs::tracing(obs_))
            obs_->trace.record(obs::EventKind::PortConflict,
                               static_cast<std::uint8_t>(ctx_id),
                               static_cast<std::uint16_t>(inst.op),
                               entry.pc);
        return false;
    }

    Cycles latency = 0;
    executeEntry(ctx_id, entry, latency);

    // Fault-layer port jitter: long-latency arithmetic (the paper's
    // contention channel) picks up deterministic extra cycles.  The
    // hook draws from the injector's stream, never from rng_ (which
    // fastForwardTo replays per cycle).
    if (issueJitter_ && dec.jitterable())
        latency += issueJitter_(ctx_id);

    if (obs::tracing(obs_))
        obs_->trace.record(obs::EventKind::SpecIssue,
                           static_cast<std::uint8_t>(ctx_id),
                           static_cast<std::uint16_t>(inst.op),
                           entry.pc);

    ports_.occupy(port, cycle_, latency, dec.unpipelined());
    entry.state = RobEntry::State::Executing;
    entry.finishCycle = cycle_ + latency;
    ++issuedThisCycle_;
    return true;
}

void
Core::doIssue()
{
    const unsigned n = static_cast<unsigned>(contexts_.size());
    // Randomized SMT priority: a fixed rotation can phase-lock with
    // even execution latencies (e.g., the 24-cycle divider) and
    // starve one context of a shared port indefinitely.
    const unsigned start = static_cast<unsigned>(rng_.below(n));
    for (unsigned offset = 0; offset < n; ++offset) {
        const unsigned ctx_id = (start + offset) % n;
        Context &ctx = contexts_[ctx_id];
        if (ctx.state != CtxState::Running)
            continue;
        unsigned examined = 0;
        for (RobEntry &entry : ctx.rob) {
            if (issuedThisCycle_ >= config_.issueWidth)
                return;
            if (++examined > config_.schedWindow)
                break;
            if (entry.state == RobEntry::State::Waiting)
                tryIssue(ctx_id, entry);
            // Barriers block younger issue until they retire (i.e.,
            // leave the ROB).
            if (entry.dec->isBarrier(config_.rdrandSerializing) ||
                entry.flushBarrier) {
                break;
            }
        }
    }
}

void
Core::dispatchOne(unsigned ctx_id)
{
    Context &ctx = contexts_[ctx_id];
    const Instruction &inst = ctx.program->at(ctx.fetchPc);
    // One memoized decode lookup replaces the predicate switches the
    // pipeline stages used to re-run per entry; the pointer stays
    // valid for the entry's whole ROB lifetime (the stream is owned
    // by ctx.program, which outlives the ROB).
    const DecodedInst &dec = ctx.stream->at(ctx.fetchPc);

    RobEntry entry;
    entry.inst = inst;
    entry.dec = &dec;
    entry.seq = ctx.nextSeq++;
    entry.pc = ctx.fetchPc;
    if (ctx.serializeNext) {
        entry.flushBarrier = true;
        ctx.serializeNext = false;
    }

    if (dec.readsSrc1()) {
        entry.dep1 = dec.readsFp1() ? ctx.lastFpWriter[inst.rs1]
                                    : ctx.lastIntWriter[inst.rs1];
    }
    if (dec.readsSrc2()) {
        entry.dep2 = dec.readsFp2() ? ctx.lastFpWriter[inst.rs2]
                                    : ctx.lastIntWriter[inst.rs2];
    }

    // Next-fetch PC: branches predicted at fetch; Halt stops fetch.
    if (dec.isCondBranch()) {
        entry.predictedTaken =
            predictor_.predict(biasedPc(ctx, ctx.fetchPc));
        ctx.fetchPc = entry.predictedTaken ? inst.target
                                           : ctx.fetchPc + 1;
    } else if (dec.isJmp()) {
        entry.actualTaken = true;
        ctx.fetchPc = inst.target;
    } else if (dec.isHalt()) {
        ctx.fetchStopped = true;
    } else {
        ++ctx.fetchPc;
    }

    if (dec.writesInt())
        ctx.lastIntWriter[inst.rd] = static_cast<std::int64_t>(entry.seq);
    if (dec.writesFp())
        ctx.lastFpWriter[inst.rd] = static_cast<std::int64_t>(entry.seq);

    ctx.rob.push_back(std::move(entry));
    ++ctx.stats.fetched;
}

void
Core::doFetch()
{
    const unsigned n = static_cast<unsigned>(contexts_.size());
    for (unsigned slot = 0; slot < config_.fetchWidth; ++slot) {
        bool fetched = false;
        for (unsigned offset = 0; offset < n && !fetched; ++offset) {
            const unsigned ctx_id =
                static_cast<unsigned>((cycle_ + slot + offset) % n);
            Context &ctx = contexts_[ctx_id];
            if (ctx.state != CtxState::Running || !ctx.program ||
                ctx.fetchStopped ||
                ctx.rob.size() >= config_.robPerContext) {
                continue;
            }
            dispatchOne(ctx_id);
            fetched = true;
        }
    }
}

} // namespace uscope::cpu
