/**
 * @file
 * The out-of-order, SMT-enabled core (paper §2.2).
 *
 * Model summary:
 *  - Two hardware contexts share fetch bandwidth, the issue ports
 *    (cpu/ports.hh), the MMU, and the cache hierarchy; each has a
 *    private architectural register file and a private ROB partition.
 *  - Instructions dispatch in order into the ROB, issue out of order
 *    when their producers are complete and a port is free, and retire
 *    in order.  Memory ops translate through the MMU at issue: a TLB
 *    miss triggers a hardware page walk whose latency depends on where
 *    the page-table entries sit in the cache hierarchy.
 *  - A load whose leaf PTE has the present bit clear completes as
 *    *faulted*; the fault is raised only when the load reaches the ROB
 *    head (precise exceptions).  Meanwhile younger instructions — the
 *    victim's sensitive code — issue and execute, leaving cache and
 *    port-contention residue.  On the fault everything younger
 *    squashes and the OS fault handler (installed by os::Machine) runs;
 *    fetch then resumes at the faulting instruction.  If the handler
 *    left the present bit clear, the window replays: this loop is the
 *    paper's microarchitectural replay engine.
 *  - Speculative loads fill caches; stores write memory only at
 *    retirement (store buffer), so replays never corrupt state.
 *  - TSX: Txbegin checkpoints architectural state at retirement;
 *    transactional stores buffer until Txend; an eviction that hits
 *    the write set (or a fault inside the transaction) aborts to the
 *    handler PC — the §7.1 alternative replay handle.
 */

#ifndef USCOPE_CPU_CORE_HH
#define USCOPE_CPU_CORE_HH

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_set>
#include <vector>

#include "common/random.hh"
#include "common/types.hh"
#include "cpu/isa.hh"
#include "cpu/ports.hh"
#include "cpu/predictor.hh"
#include "cpu/program.hh"
#include "mem/hierarchy.hh"
#include "mem/phys_mem.hh"
#include "obs/observer.hh"
#include "vm/mmu.hh"

namespace uscope::obs
{
class MetricRegistry;
} // namespace uscope::obs

namespace uscope::cpu
{

/** Core microarchitecture parameters. */
struct CoreConfig
{
    unsigned numContexts = 2;
    unsigned robPerContext = 112;
    /** Scheduler window: issue scan depth per context per cycle. */
    unsigned schedWindow = 112;
    unsigned fetchWidth = 4;
    unsigned issueWidth = 6;
    unsigned retireWidth = 4;

    Cycles aluLatency = 1;
    Cycles mulLatency = 3;
    Cycles fmulLatency = 4;
    Cycles divLatency = 24;
    Cycles fdivLatency = 24;
    /** Penalized fdiv latency when an operand/result is subnormal. */
    Cycles fdivSubnormalLatency = 120;
    Cycles aguLatency = 1;
    /** Store-to-load forwarding latency. */
    Cycles forwardLatency = 5;
    Cycles rdtscLatency = 8;
    Cycles rdrandLatency = 150;
    /**
     * Intel's RDRAND includes an internal serializing fence that
     * blocks speculation past it (§7.2 — this is what defeats the
     * RDRAND-bias attack).  Configurable for the ablation.
     */
    bool rdrandSerializing = true;

    /**
     * §8 "Fences on Pipeline Flushes" defense: after any pipeline
     * flush (page-fault squash or branch misprediction) the first
     * re-fetched instruction acts as a fence, so nothing younger
     * issues until it retires — starving the replay window.
     */
    bool fenceOnPipelineFlush = false;

    unsigned predictorEntries = 4096;

    /** Structural equality (snapshot/pool compatibility checks). */
    bool operator==(const CoreConfig &) const = default;
};

/** Why a context's retirement raised an event. */
struct FaultInfo
{
    unsigned ctx = 0;
    VAddr va = 0;           ///< Faulting data virtual address.
    std::uint64_t pc = 0;   ///< PC of the faulting instruction.
    bool isStore = false;
};

/** Per-context execution statistics. */
struct CtxStats
{
    std::uint64_t fetched = 0;
    std::uint64_t retired = 0;
    std::uint64_t squashed = 0;
    std::uint64_t pageFaults = 0;
    std::uint64_t mispredicts = 0;
    std::uint64_t txAborts = 0;
    std::uint64_t stallCycles = 0;
};

/** Lifecycle state of a hardware context. */
enum class CtxState
{
    Idle,      ///< No program loaded.
    Running,
    Stalled,   ///< Blocked until a wake-up cycle (fault handling).
    Halted,    ///< Retired a Halt.
};

/** The simulated core. */
class Core
{
  public:
    /** Called when a page fault reaches the head of the ROB. */
    using FaultHandler = std::function<void(const FaultInfo &)>;
    /** Entropy source for RDRAND (installed by the OS). */
    using RdrandSource = std::function<std::uint64_t()>;

    Core(mem::PhysMem &mem, mem::Hierarchy &hierarchy, vm::Mmu &mmu,
         const CoreConfig &config = CoreConfig{}, std::uint64_t seed = 7);

    const CoreConfig &config() const { return config_; }
    Cycles cycle() const { return cycle_; }

    /** Install the OS page-fault entry point. */
    void setFaultHandler(FaultHandler handler);

    /** Install the RDRAND entropy source. */
    void setRdrandSource(RdrandSource source);

    /**
     * Observation hook fired at every load/store *execution* (incl.
     * speculative, squashed-later ones).  For tests and attack
     * research instrumentation; never used by the model itself.
     */
    using MemProbe = std::function<void(unsigned ctx, VAddr va,
                                        PAddr pa, bool is_store,
                                        bool faulted)>;
    void setMemProbe(MemProbe probe);

    /**
     * Load @p program onto context @p ctx and start fetching at
     * @p entry.  @p pc_bias is the context's text base used to index
     * the shared branch predictor (the OS knows it — the attacker can
     * therefore compute predictor indices).
     */
    void startContext(unsigned ctx, std::shared_ptr<const Program> program,
                      std::uint64_t entry, Pcid pcid, PAddr pt_root,
                      std::uint64_t pc_bias);

    /** Stop and clear a context. */
    void stopContext(unsigned ctx);

    /** Program loaded on @p ctx (null while idle). */
    const std::shared_ptr<const Program> &contextProgram(unsigned ctx) const
    {
        return ctxAt(ctx).program;
    }

    CtxState contextState(unsigned ctx) const;
    bool halted(unsigned ctx) const;

    /** Block a context's fetch/issue for @p duration cycles. */
    void stallContext(unsigned ctx, Cycles duration);

    /**
     * Scheduler preemption of @p ctx (fault-injection layer): squash
     * everything in flight, resume fetch at the oldest unretired
     * instruction (precise — stores only write at retirement, so
     * re-execution is safe), and stall the context for @p penalty
     * cycles of scheduler-quantum tax.  Inside a transaction the
     * context switch aborts it instead (TSX semantics).  Idle and
     * halted contexts just pay the stall bookkeeping-free no-op.
     */
    void preemptContext(unsigned ctx, Cycles penalty);

    /**
     * Deterministic-noise hook (fault-injection layer): called once
     * per successful issue of a jitterable op (Mul/Div/Fmul/Fdiv);
     * the returned extra cycles stretch that op's execution latency.
     * Must NOT touch this core's own RNG stream — fastForwardTo
     * replays that stream per skipped cycle, so any extra draw there
     * would break fast-forward bit-identity.  Injector-owned streams
     * are safe: issues happen at identical cycles in both modes.
     */
    using IssueJitterHook = std::function<Cycles(unsigned ctx)>;
    void setIssueJitterHook(IssueJitterHook hook);

    /** Squash everything in flight and restart fetch at @p pc. */
    void redirectContext(unsigned ctx, std::uint64_t pc);

    /** Architectural register access (setup and result readback). */
    std::uint64_t readIntReg(unsigned ctx, Reg reg) const;
    void writeIntReg(unsigned ctx, Reg reg, std::uint64_t value);
    double readFpReg(unsigned ctx, Reg reg) const;
    void writeFpReg(unsigned ctx, Reg reg, double value);

    /** Advance the whole core by one cycle. */
    void tick();

    /** Tick until @p pred() or @p max_cycles elapse; false on timeout.
     *  Always cycle-by-cycle; event-driven fast-forward lives in
     *  os::Machine, which combines every component's nextEventCycle().
     */
    bool runUntil(const std::function<bool()> &pred, Cycles max_cycles);

    /**
     * Earliest cycle at which calling tick() can change architectural
     * or stats state (the fast-forward contract, DESIGN.md §10):
     * in-flight completion times, stall wake-ups, pending transaction
     * aborts, possible fetch/retire/issue activity, and — when event
     * tracing is enabled — any cycle that would record a trace event
     * (port-conflict retries).  Returns cycle() when the very next
     * tick may do work, kNoEventCycle when nothing is in flight.
     *
     * The guarantee is *bit-identity*: for every cycle c in
     * [cycle(), nextEventCycle()), tick() at c would change nothing
     * except the cycle counter and one SMT-arbitration RNG draw —
     * both of which fastForwardTo() replays exactly.
     */
    Cycles nextEventCycle() const;

    /**
     * Jump the clock to @p target without ticking.  The caller must
     * guarantee target <= nextEventCycle(); the skipped span's
     * per-cycle SMT-arbitration draws are burned so the RNG stream
     * stays bit-identical to a cycle-by-cycle run.
     */
    void fastForwardTo(Cycles target);

    /** Shared branch predictor (the attacker primes/flushes it). */
    BranchPredictor &predictor() { return predictor_; }

    /**
     * Notify the core that @p paddr's line left the cache hierarchy.
     * Aborts any transaction whose write set contains it (§7.1).
     */
    void notifyLineEvicted(PAddr paddr);

    /** Abort context @p ctx's transaction, if one is active. */
    bool abortTransaction(unsigned ctx);

    /** True while @p ctx is inside a transaction. */
    bool inTransaction(unsigned ctx) const;

    const CtxStats &stats(unsigned ctx) const;
    const PortState &ports() const { return ports_; }

    /** Current ROB occupancy (tests). */
    std::size_t robOccupancy(unsigned ctx) const;

    /**
     * Adopt @p other's mutable state — cycle counter, contexts (ROB,
     * registers, TSX checkpoints, stats), ports, predictor, and the
     * SMT-arbitration RNG stream (snapshot forking, DESIGN.md §12).
     * Configs must match.  Callbacks (fault handler, RDRAND source,
     * probes, jitter hooks), the memory-system references, and the
     * observer wiring stay this core's own: they capture the owning
     * Machine and would dangle if carried across.
     */
    void copyStateFrom(const Core &other);

    /** Return to the just-constructed state with a fresh @p seed. */
    void reset(std::uint64_t seed);

    /** Re-derive the SMT-arbitration stream from @p seed (fork
     *  reseed; leaves all architectural state and stats alone). */
    void reseed(std::uint64_t seed) { rng_.seed(seed); }

    /**
     * reseed(@p seed), then advance the stream by @p ticks issue
     * draws — the position a core seeded at some cycle c reaches
     * after running @p ticks cycles (doIssue draws exactly once per
     * tick; fastForwardTo burns the same).  The reseed-at-fork
     * primitive for a machine adopted mid-run: state copied from a
     * sibling at cycle c + ticks, stream equal to "seeded at c, ran
     * forward" (DESIGN.md §17).
     */
    void reseedAdvanced(std::uint64_t seed, Cycles ticks);

    /** Raw draws consumed from the issue-arbitration stream since the
     *  last (re)seed — one below(numContexts) per simulated tick, so
     *  equal counts certify bit-equal stream positions (the
     *  reseedAdvanced contract tests hold the core to). */
    std::uint64_t rngDraws() const { return rng_.draws(); }

    /** Wire the owning Machine's observability hub (may be null);
     *  binds the hub's event clock to this core's cycle counter. */
    void setObserver(obs::Observer *observer);

    /** Register core.* (per-context sums, ROB squashes, port issue
     *  counts) into @p registry. */
    void exportMetrics(obs::MetricRegistry &registry) const;

  private:
    /** One reorder-buffer entry. */
    struct RobEntry
    {
        Instruction inst;
        /** Memoized decode for inst (points into the context's shared
         *  DecodedStream; kept alive by Context::program). */
        const DecodedInst *dec = nullptr;
        std::uint64_t seq = 0;
        std::uint64_t pc = 0;

        enum class State { Waiting, Executing, Done } state =
            State::Waiting;
        Cycles finishCycle = 0;

        // Dependencies: producer sequence numbers, or -1 if the value
        // comes from the architectural register file.
        std::int64_t dep1 = -1;
        std::int64_t dep2 = -1;

        std::uint64_t result = 0;      ///< Destination value (bits).
        bool faulted = false;
        VAddr faultVa = 0;
        /** Acts as a fence (fenceOnPipelineFlush defense). */
        bool flushBarrier = false;

        // Branch bookkeeping.
        bool predictedTaken = false;
        bool actualTaken = false;
        bool mispredictHandled = false;

        // Store bookkeeping: the address resolves at execute (only the
        // base register is needed); the data may resolve later — at
        // the latest at retirement, when the producer has retired.
        bool storeResolved = false;       ///< Address known.
        bool storeDataResolved = false;   ///< Value known.
        VAddr storeVa = 0;
        PAddr storePa = 0;
        std::uint64_t storeValue = 0;
        unsigned storeLen = 0;
    };

    /** A buffered transactional store awaiting commit. */
    struct TxStore
    {
        PAddr pa;
        std::uint64_t value;
        unsigned len;
    };

    /** Per-context state. */
    struct Context
    {
        CtxState state = CtxState::Idle;
        std::shared_ptr<const Program> program;
        /** The program's shared decode table (null iff no program).
         *  Owned by `program`; copying a Context shares the stream. */
        const DecodedStream *stream = nullptr;
        std::uint64_t fetchPc = 0;
        bool fetchStopped = false;  ///< Past a Halt or unresolved edge.
        Pcid pcid = 0;
        PAddr ptRoot = 0;
        std::uint64_t pcBias = 0;
        Cycles stallUntil = 0;

        std::array<std::uint64_t, numIntRegs> intRegs{};
        std::array<std::uint64_t, numFpRegs> fpRegs{};

        std::deque<RobEntry> rob;
        std::uint64_t nextSeq = 0;
        std::array<std::int64_t, numIntRegs> lastIntWriter;
        std::array<std::int64_t, numFpRegs> lastFpWriter;

        /** Next dispatched instruction becomes a flush barrier. */
        bool serializeNext = false;

        // TSX.
        bool inTx = false;
        std::uint64_t txAbortPc = 0;
        std::array<std::uint64_t, numIntRegs> txIntRegs{};
        std::array<std::uint64_t, numFpRegs> txFpRegs{};
        std::vector<TxStore> txStores;
        std::unordered_set<PAddr> txWriteSet;  ///< Line base addrs.
        bool txPendingAbort = false;

        CtxStats stats;
    };

    Context &ctxAt(unsigned ctx);
    const Context &ctxAt(unsigned ctx) const;

    void doCompletions();
    void doRetire();
    void doIssue();
    void doFetch();

    void dispatchOne(unsigned ctx_id);
    /** Operand + memory-ordering issue gate (no port/side effects);
     *  shared by tryIssue and nextEventCycle so the two can never
     *  disagree about when an entry becomes issueable. */
    bool issueReady(const Context &ctx, const RobEntry &entry) const;
    bool tryIssue(unsigned ctx_id, RobEntry &entry);
    void executeEntry(unsigned ctx_id, RobEntry &entry, Cycles &latency);
    void executeMemOp(unsigned ctx_id, RobEntry &entry, Cycles &latency);
    bool retireOne(unsigned ctx_id);
    void handleFaultAtHead(unsigned ctx_id, const RobEntry &head);
    void doTxAbort(unsigned ctx_id);

    /** Resolve a source value; false if the producer is not done. */
    bool resolveSource(const Context &ctx, std::int64_t dep, Reg reg,
                       bool fp,
                       std::uint64_t &value) const;

    /** Find an in-flight entry by sequence number. */
    const RobEntry *findEntry(const Context &ctx, std::uint64_t seq) const;

    /** Squash all entries younger than @p keep_upto (exclusive). */
    void squashYounger(unsigned ctx_id, std::int64_t keep_seq);

    /** Squash the whole context. */
    void squashAll(unsigned ctx_id);

    void rebuildWriterTables(Context &ctx);

    std::uint64_t biasedPc(const Context &ctx, std::uint64_t pc) const;

    mem::PhysMem &mem_;
    mem::Hierarchy &hierarchy_;
    vm::Mmu &mmu_;
    CoreConfig config_;
    Rng rng_;

    Cycles cycle_ = 0;
    std::vector<Context> contexts_;
    PortState ports_;
    BranchPredictor predictor_;
    unsigned issuedThisCycle_ = 0;

    FaultHandler faultHandler_;
    RdrandSource rdrandSource_;
    MemProbe memProbe_;
    IssueJitterHook issueJitter_;
    obs::Observer *obs_ = nullptr;
};

} // namespace uscope::cpu

#endif // USCOPE_CPU_CORE_HH
