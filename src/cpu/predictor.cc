#include "cpu/predictor.hh"

#include "common/bitfield.hh"
#include "common/logging.hh"

namespace uscope::cpu
{

BranchPredictor::BranchPredictor(unsigned entries)
{
    if (!isPowerOf2(entries))
        fatal("BranchPredictor: %u entries not a power of two", entries);
    table_.assign(entries, 1);  // Weakly not-taken.
}

unsigned
BranchPredictor::indexOf(std::uint64_t pc) const
{
    // Cheap mix so nearby PCs spread across the table.
    const std::uint64_t hash = pc * 0x9E3779B97F4A7C15ull;
    return static_cast<unsigned>(hash >> 40) & (table_.size() - 1);
}

bool
BranchPredictor::predict(std::uint64_t pc)
{
    ++stats_.lookups;
    return table_[indexOf(pc)] >= 2;
}

void
BranchPredictor::update(std::uint64_t pc, bool taken)
{
    ++stats_.updates;
    std::uint8_t &counter = table_[indexOf(pc)];
    if (taken) {
        if (counter < 3)
            ++counter;
    } else {
        if (counter > 0)
            --counter;
    }
}

void
BranchPredictor::flush()
{
    ++stats_.flushes;
    for (auto &counter : table_)
        counter = 1;
}

void
BranchPredictor::prime(std::uint64_t pc, bool taken)
{
    table_[indexOf(pc)] = taken ? 3 : 0;
}

unsigned
BranchPredictor::counter(std::uint64_t pc) const
{
    return table_[indexOf(pc)];
}

} // namespace uscope::cpu
