/**
 * @file
 * Conditional-branch direction predictor: a table of 2-bit saturating
 * counters indexed by (biased) PC.
 *
 * Two properties matter for the paper's control-flow-secret attack
 * (§4.2.3): the adversary can *flush* the predictor into a known state
 * (as SGX enclave-boundary countermeasures do [12]) and can *prime* a
 * given branch toward a chosen direction (as in Spectre [33]).  Either
 * way the predictor state is public, so observing whether the replayed
 * branch re-executes (mispredicts) leaks secret == predicted-direction.
 */

#ifndef USCOPE_CPU_PREDICTOR_HH
#define USCOPE_CPU_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace uscope::cpu
{

/** Predictor hit/update counters. */
struct PredictorStats
{
    std::uint64_t lookups = 0;
    std::uint64_t updates = 0;
    std::uint64_t flushes = 0;
};

/** Bimodal 2-bit-counter direction predictor, shared by SMT contexts. */
class BranchPredictor
{
  public:
    /** @param entries Table size (power of two). */
    explicit BranchPredictor(unsigned entries = 4096);

    /** Predicted direction for the branch at biased PC @p pc. */
    bool predict(std::uint64_t pc);

    /** Train with the resolved direction. */
    void update(std::uint64_t pc, bool taken);

    /**
     * Reset every counter to weakly-not-taken.  Models the SGX
     * enclave-boundary predictor flush: afterwards the state is
     * *public* (all not-taken), which is what MicroScope exploits.
     */
    void flush();

    /**
     * Adversarial priming: saturate the counter for @p pc toward
     * @p taken (the attacker knows the victim's PC bias).
     */
    void prime(std::uint64_t pc, bool taken);

    /** Raw counter value (tests). */
    unsigned counter(std::uint64_t pc) const;

    const PredictorStats &stats() const { return stats_; }

    /**
     * Return to the just-constructed state: counters weakly-not-taken
     * and zero stats.  Unlike flush() this is not an architectural
     * event — it does not count itself — so a pooled Machine::reset()
     * stays bit-identical to a fresh construction.
     */
    void reset()
    {
        table_.assign(table_.size(), 1);
        stats_ = PredictorStats{};
    }

  private:
    unsigned indexOf(std::uint64_t pc) const;

    std::vector<std::uint8_t> table_;  ///< 2-bit counters, 0..3.
    PredictorStats stats_;
};

} // namespace uscope::cpu

#endif // USCOPE_CPU_PREDICTOR_HH
