/**
 * @file
 * Execution-port model.
 *
 * Both SMT contexts issue micro-ops to one shared set of ports each
 * cycle, Intel-style: port 0 hosts the *unpipelined* divider (one
 * div/fdiv occupies it for the op's full latency), port 1 the
 * pipelined multiplier, ports 2/3 load AGUs, port 4 the store unit,
 * and ports 5/6 simple ALU (6 also takes branches).  Contention on
 * port 0 is the PortSmash-style channel the paper's main attack
 * denoises (§4.3): a victim fdiv makes a co-resident Monitor's fdiv
 * wait, which the Monitor sees as extra latency.
 */

#ifndef USCOPE_CPU_PORTS_HH
#define USCOPE_CPU_PORTS_HH

#include <array>
#include <cstdint>

#include "common/types.hh"
#include "cpu/isa.hh"

namespace uscope::cpu
{

constexpr unsigned numPorts = 7;

/** Symbolic port numbers. */
enum PortId : unsigned
{
    portDiv = 0,
    portMul = 1,
    portLoad0 = 2,
    portLoad1 = 3,
    portStore = 4,
    portAlu0 = 5,
    portAlu1 = 6,  ///< Also executes branches.
};

/** Up to two candidate ports for an op ("none" = 0xFF). */
struct PortChoices
{
    std::uint8_t first = 0xFF;
    std::uint8_t second = 0xFF;
};

/** Which port(s) can execute @p op. */
PortChoices portsFor(Op op);

/** True for ops that monopolize their port for the full latency. */
bool unpipelined(Op op);

/** Shared-port occupancy tracker. */
class PortState
{
  public:
    PortState();

    /** Start a new cycle: clear the per-cycle issue flags. */
    void newCycle();

    /** Can a micro-op issue to @p port at @p now? */
    bool canIssue(unsigned port, Cycles now) const;

    /**
     * Occupy @p port: pipelined ops block it for this cycle only,
     * unpipelined ops until @p now + @p duration.
     */
    void occupy(unsigned port, Cycles now, Cycles duration,
                bool unpipelined_op);

    /** Cycle the unpipelined unit on @p port frees up. */
    Cycles busyUntil(unsigned port) const { return busyUntil_[port]; }

    /** Lifetime issue count per port (stats). */
    std::uint64_t issues(unsigned port) const { return issues_[port]; }

    /** Return to the just-constructed state (all ports free). */
    void reset()
    {
        busyUntil_.fill(0);
        usedThisCycle_.fill(false);
        issues_.fill(0);
    }

  private:
    std::array<Cycles, numPorts> busyUntil_;
    std::array<bool, numPorts> usedThisCycle_;
    std::array<std::uint64_t, numPorts> issues_;
};

} // namespace uscope::cpu

#endif // USCOPE_CPU_PORTS_HH
