#include "cpu/isa.hh"

#include "common/logging.hh"

namespace uscope::cpu
{

const char *
opName(Op op)
{
    switch (op) {
      case Op::Nop: return "nop";
      case Op::Movi: return "movi";
      case Op::Mov: return "mov";
      case Op::Add: return "add";
      case Op::Addi: return "addi";
      case Op::Sub: return "sub";
      case Op::And: return "and";
      case Op::Andi: return "andi";
      case Op::Or: return "or";
      case Op::Xor: return "xor";
      case Op::Shli: return "shli";
      case Op::Shri: return "shri";
      case Op::Mul: return "mul";
      case Op::Div: return "div";
      case Op::Fmovi: return "fmovi";
      case Op::Fmov: return "fmov";
      case Op::Fadd: return "fadd";
      case Op::Fmul: return "fmul";
      case Op::Fdiv: return "fdiv";
      case Op::Ld: return "ld";
      case Op::Ld32: return "ld32";
      case Op::Ldf: return "ldf";
      case Op::St: return "st";
      case Op::St32: return "st32";
      case Op::Stf: return "stf";
      case Op::Jmp: return "jmp";
      case Op::Beq: return "beq";
      case Op::Bne: return "bne";
      case Op::Blt: return "blt";
      case Op::Bge: return "bge";
      case Op::Rdtsc: return "rdtsc";
      case Op::Rdrand: return "rdrand";
      case Op::Fence: return "fence";
      case Op::Txbegin: return "txbegin";
      case Op::Txend: return "txend";
      case Op::Halt: return "halt";
    }
    return "?";
}

std::string
Instruction::toString() const
{
    return format("%s rd=%u rs1=%u rs2=%u imm=%lld tgt=%u",
                  opName(op), rd, rs1, rs2,
                  static_cast<long long>(imm), target);
}

bool
isLoad(Op op)
{
    return op == Op::Ld || op == Op::Ld32 || op == Op::Ldf;
}

bool
isStore(Op op)
{
    return op == Op::St || op == Op::St32 || op == Op::Stf;
}

bool
isBranch(Op op)
{
    return isCondBranch(op) || op == Op::Jmp;
}

bool
isCondBranch(Op op)
{
    return op == Op::Beq || op == Op::Bne || op == Op::Blt ||
           op == Op::Bge;
}

bool
writesFp(Op op)
{
    switch (op) {
      case Op::Fmovi:
      case Op::Fmov:
      case Op::Fadd:
      case Op::Fmul:
      case Op::Fdiv:
      case Op::Ldf:
        return true;
      default:
        return false;
    }
}

bool
writesInt(Op op)
{
    switch (op) {
      case Op::Movi:
      case Op::Mov:
      case Op::Add:
      case Op::Addi:
      case Op::Sub:
      case Op::And:
      case Op::Andi:
      case Op::Or:
      case Op::Xor:
      case Op::Shli:
      case Op::Shri:
      case Op::Mul:
      case Op::Div:
      case Op::Ld:
      case Op::Ld32:
      case Op::Rdtsc:
      case Op::Rdrand:
        return true;
      default:
        return false;
    }
}

bool
readsFp1(Op op)
{
    switch (op) {
      case Op::Fmov:
      case Op::Fadd:
      case Op::Fmul:
      case Op::Fdiv:
        return true;
      default:
        return false;
    }
}

bool
readsFp2(Op op)
{
    switch (op) {
      case Op::Fadd:
      case Op::Fmul:
      case Op::Fdiv:
      case Op::Stf:
        return true;
      default:
        return false;
    }
}

bool
readsSrc1(Op op)
{
    switch (op) {
      case Op::Nop:
      case Op::Movi:
      case Op::Fmovi:
      case Op::Jmp:
      case Op::Rdtsc:
      case Op::Rdrand:
      case Op::Fence:
      case Op::Txbegin:
      case Op::Txend:
      case Op::Halt:
        return false;
      default:
        return true;
    }
}

bool
readsSrc2(Op op)
{
    switch (op) {
      case Op::Add:
      case Op::Sub:
      case Op::And:
      case Op::Or:
      case Op::Xor:
      case Op::Mul:
      case Op::Div:
      case Op::Fadd:
      case Op::Fmul:
      case Op::Fdiv:
      case Op::St:
      case Op::St32:
      case Op::Stf:
      case Op::Beq:
      case Op::Bne:
      case Op::Blt:
      case Op::Bge:
        return true;
      default:
        return false;
    }
}

} // namespace uscope::cpu
