#include "cpu/decode.hh"

#include <atomic>

namespace uscope::cpu
{

DecodedInst
decodeOp(Op op)
{
    DecodedInst d;
    std::uint32_t f = 0;
    if (isLoad(op))
        f |= DecodedInst::kLoad;
    if (isStore(op))
        f |= DecodedInst::kStore;
    if (isBranch(op))
        f |= DecodedInst::kBranch;
    if (isCondBranch(op))
        f |= DecodedInst::kCondBranch;
    if (writesInt(op))
        f |= DecodedInst::kWritesInt;
    if (writesFp(op))
        f |= DecodedInst::kWritesFp;
    if (readsSrc1(op))
        f |= DecodedInst::kReadsSrc1;
    if (readsSrc2(op))
        f |= DecodedInst::kReadsSrc2;
    if (readsFp1(op))
        f |= DecodedInst::kReadsFp1;
    if (readsFp2(op))
        f |= DecodedInst::kReadsFp2;
    if (unpipelined(op))
        f |= DecodedInst::kUnpipelined;
    if (op == Op::Mul || op == Op::Div || op == Op::Fmul ||
        op == Op::Fdiv)
        f |= DecodedInst::kJitterable;
    if (op == Op::Fence)
        f |= DecodedInst::kFence;
    if (op == Op::Rdrand)
        f |= DecodedInst::kRdrand;
    if (op == Op::Halt)
        f |= DecodedInst::kHalt;
    if (op == Op::Jmp)
        f |= DecodedInst::kJmp;
    d.flags = f;
    d.ports = portsFor(op);
    return d;
}

namespace
{

std::uint64_t
nextStreamId()
{
    // Relaxed is enough: ids only need uniqueness, not ordering.
    static std::atomic<std::uint64_t> counter{1};
    return counter.fetch_add(1, std::memory_order_relaxed);
}

} // namespace

DecodedStream::DecodedStream(const std::vector<Instruction> &insts)
    : haltDec_(decodeOp(Op::Halt)), id_(nextStreamId())
{
    decoded_.reserve(insts.size());
    for (const Instruction &inst : insts) {
        decoded_.push_back(decodeOp(inst.op));
        hasRdrand_ |= inst.op == Op::Rdrand;
    }
}

} // namespace uscope::cpu
