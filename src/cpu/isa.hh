/**
 * @file
 * The simulator's mini-ISA.
 *
 * A small RISC-like instruction set with the structure of the x86
 * listings in the paper (Figures 5–7): integer/FP ALU ops, a pipelined
 * multiplier and an unpipelined divider (the port-contention channel),
 * loads/stores with base+displacement addressing (the replay handles),
 * conditional branches (the control-flow-secret victims), RDTSC (the
 * Monitor's timer), RDRAND (§7.2), fences, and TSX markers (§7.1).
 *
 * Registers: 32 integer (r0..r31) and 32 floating-point (f0..f31,
 * IEEE-754 double).  r0 is an ordinary register, not hardwired.
 */

#ifndef USCOPE_CPU_ISA_HH
#define USCOPE_CPU_ISA_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace uscope::cpu
{

constexpr unsigned numIntRegs = 32;
constexpr unsigned numFpRegs = 32;

/** Register index (int and FP spaces are separate). */
using Reg = std::uint8_t;

/** Instruction opcodes. */
enum class Op : std::uint8_t
{
    Nop,

    // Integer ALU.
    Movi,    ///< rd <- imm
    Mov,     ///< rd <- rs1
    Add,     ///< rd <- rs1 + rs2
    Addi,    ///< rd <- rs1 + imm
    Sub,     ///< rd <- rs1 - rs2
    And,     ///< rd <- rs1 & rs2
    Andi,    ///< rd <- rs1 & imm
    Or,      ///< rd <- rs1 | rs2
    Xor,     ///< rd <- rs1 ^ rs2
    Shli,    ///< rd <- rs1 << imm
    Shri,    ///< rd <- rs1 >> imm (logical)

    // Multiply / divide (the contention channel).
    Mul,     ///< rd <- rs1 * rs2 (pipelined, port 1)
    Div,     ///< rd <- rs1 / rs2 (unpipelined, port 0)

    // Floating point.
    Fmovi,   ///< fd <- fp immediate (bits in imm)
    Fmov,    ///< fd <- fs1
    Fadd,    ///< fd <- fs1 + fs2
    Fmul,    ///< fd <- fs1 * fs2 (pipelined, port 1)
    Fdiv,    ///< fd <- fs1 / fs2 (unpipelined, port 0; slower if
             ///<                  subnormal operands/result — §4.3)

    // Memory.
    Ld,      ///< rd <- mem64[rs1 + imm]
    Ld32,    ///< rd <- zext(mem32[rs1 + imm])
    Ldf,     ///< fd <- mem64[rs1 + imm] as double
    St,      ///< mem64[rs1 + imm] <- rs2
    St32,    ///< mem32[rs1 + imm] <- low32(rs2)
    Stf,     ///< mem64[rs1 + imm] <- fs2 bits

    // Control flow (target = instruction index).
    Jmp,     ///< pc <- target
    Beq,     ///< if rs1 == rs2: pc <- target
    Bne,     ///< if rs1 != rs2: pc <- target
    Blt,     ///< if (s64)rs1 <  (s64)rs2: pc <- target
    Bge,     ///< if (s64)rs1 >= (s64)rs2: pc <- target

    // System.
    Rdtsc,   ///< rd <- current cycle
    Rdrand,  ///< rd <- hardware entropy (optionally serializing)
    Fence,   ///< no younger instruction issues until this retires
    Txbegin, ///< begin transaction; on abort, pc <- target
    Txend,   ///< commit transaction
    Halt,    ///< stop this context
};

/** Human-readable mnemonic. */
const char *opName(Op op);

/** One decoded instruction. */
struct Instruction
{
    Op op = Op::Nop;
    Reg rd = 0;            ///< Destination (int or FP per opcode).
    Reg rs1 = 0;           ///< Source 1 / base register.
    Reg rs2 = 0;           ///< Source 2 / store-data register.
    std::int64_t imm = 0;  ///< Immediate / displacement / FP bits.
    std::uint32_t target = 0;  ///< Branch/abort target (inst index).

    std::string toString() const;
};

/** True for Ld/Ld32/Ldf. */
bool isLoad(Op op);

/** True for St/St32/Stf. */
bool isStore(Op op);

/** True for any memory op. */
inline bool isMem(Op op) { return isLoad(op) || isStore(op); }

/** True for conditional branches and Jmp. */
bool isBranch(Op op);

/** True for conditional branches only. */
bool isCondBranch(Op op);

/** True when the opcode writes an FP destination. */
bool writesFp(Op op);

/** True when the opcode writes an integer destination. */
bool writesInt(Op op);

/** True when source 1 is an FP register. */
bool readsFp1(Op op);

/** True when source 2 is an FP register. */
bool readsFp2(Op op);

/** True when the opcode reads rs1 at all. */
bool readsSrc1(Op op);

/** True when the opcode reads rs2 at all. */
bool readsSrc2(Op op);

} // namespace uscope::cpu

#endif // USCOPE_CPU_ISA_HH
