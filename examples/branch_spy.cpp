/**
 * @file
 * Scenario: spying on a secret branch inside a run-once enclave.
 *
 * The paper's motivating deployments — "filing tax returns or
 * performing tasks in personalized medicine" — run once per input, so
 * an attacker gets a single trace.  This example stages that setting:
 * an enclave whose (single) secret-dependent branch picks between two
 * computations (Figure 4c / Figure 6), attacked through BOTH channels
 * the paper demonstrates:
 *
 *   1. the execution-port contention channel (a Monitor thread on the
 *      SMT sibling times divide bursts), and
 *   2. the cache channel (the Replayer probes the two paths' operand
 *      lines after every replay),
 *
 * plus the §4.2.3 misprediction trick with a primed predictor.
 */

#include <cstdio>

#include "attack/control_flow.hh"
#include "attack/port_contention.hh"

using namespace uscope;

int
main()
{
    std::printf("Scenario: a run-once enclave branches on a secret.\n");
    std::printf("The OS (us) may not read enclave memory — but controls "
                "paging.\n\n");

    for (bool secret : {false, true}) {
        std::printf("=== ground-truth secret: %d (%s path) ===\n",
                    secret, secret ? "divide" : "multiply");

        // Channel 1: port contention via an SMT-sibling Monitor.
        attack::PortContentionConfig port_config;
        port_config.victimDivides = secret;
        port_config.samples = 4000;
        port_config.replays = 60;
        const auto port = attack::runPortContentionAttack(port_config);
        std::printf("  port channel : %llu/%u samples above %llu "
                    "cycles -> secret=%d %s\n",
                    static_cast<unsigned long long>(
                        port.aboveThreshold),
                    port_config.samples,
                    static_cast<unsigned long long>(
                        port_config.threshold),
                    port.inferredDivides,
                    port.inferredDivides == secret ? "(correct)"
                                                   : "(WRONG)");

        // Channel 2: cache residue of the taken path's operands.
        attack::ControlFlowConfig cache_config;
        cache_config.secret = secret;
        const auto cache = attack::runControlFlowAttack(cache_config);
        std::printf("  cache channel: mul-page hits %llu, div-page "
                    "hits %llu -> secret=%d %s\n",
                    static_cast<unsigned long long>(cache.mulHits),
                    static_cast<unsigned long long>(cache.divHits),
                    cache.inferredSecret && *cache.inferredSecret,
                    (cache.inferredSecret &&
                     *cache.inferredSecret == secret)
                        ? "(correct)"
                        : "(WRONG)");

        // Channel 3 (§4.2.3): prime the predictor and detect
        // re-execution — leaks secret == prediction.
        attack::ControlFlowConfig predict_config;
        predict_config.secret = secret;
        predict_config.primeTaken = true;  // predict the mul path
        const auto predicted =
            attack::runControlFlowAttack(predict_config);
        std::printf("  prediction   : primed 'taken'; both paths "
                    "observed=%d => %s\n",
                    predicted.bothPathsObserved,
                    predicted.bothPathsObserved
                        ? "mispredicted -> secret != prediction"
                        : "predicted correctly -> secret == prediction");
        std::printf("\n");
    }

    std::printf("All three channels agree, from one logical run each —\n");
    std::printf("despite the enclave never looping and SGX's replay "
                "protections.\n");
    return 0;
}
