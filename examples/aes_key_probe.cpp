/**
 * @file
 * Scenario: single-stepping AES-128 decryption in an enclave (§4.4).
 *
 * The enclave decrypts one ciphertext block with OpenSSL-0.9.8-style
 * table lookups.  Using a replay handle on the Td0 page and a pivot
 * on the round-key page, MicroScope steps the decryption one t-group
 * at a time, extracting every table line touched — and, as an
 * extension, recovers round-1 state nibbles (bits of ciphertext ^
 * round key) by suffix-differencing consecutive windows.
 */

#include <cstdio>
#include <cstring>

#include "attack/aes_attack.hh"

using namespace uscope;

int
main()
{
    attack::AesAttackConfig config;
    const char *key_text = "correct horse ba";  // 16 bytes
    const char *message = "attack at dawn!!";
    std::memcpy(config.key.data(), key_text, 16);
    std::memcpy(config.plaintext.data(), message, 16);

    std::printf("Enclave decrypts one block under a sealed key.\n");
    std::printf("We are the OS: no access to the key or the data —\n");
    std::printf("only to page tables, caches, and time.\n\n");

    const attack::AesExtractionResult result =
        attack::runAesExtraction(config);

    std::printf("single-stepped %zu t-groups with %llu replays "
                "(%llu page faults)\n",
                result.episodes.size(),
                static_cast<unsigned long long>(result.totalReplays),
                static_cast<unsigned long long>(result.totalFaults));
    std::printf("decryption result still correct: %s\n\n",
                result.plaintextCorrect ? "yes (attack invisible)"
                                        : "NO");

    std::printf("extracted table lines, per round (Td0|Td1|Td2|Td3):\n");
    for (unsigned round = 1; round <= 9; ++round) {
        const auto lines = result.roundLines(round);
        std::printf("  round %u:", round);
        for (unsigned table = 0; table < 4; ++table) {
            std::printf(" %c", table ? '|' : ' ');
            for (unsigned line : lines[table])
                std::printf("%x", line);
        }
        std::printf("\n");
    }

    const auto nibbles = attack::recoverRound1Nibbles(result);
    const auto truth = attack::groundTruthRound1Nibbles(config);
    std::printf("\nround-1 state nibbles (ct ^ rk), recovered vs truth:\n  ");
    unsigned recovered = 0;
    unsigned correct = 0;
    for (unsigned i = 0; i < 16; ++i) {
        if (nibbles[i]) {
            std::printf("%X", *nibbles[i]);
            ++recovered;
            correct += *nibbles[i] == truth[i];
        } else {
            std::printf("?");
        }
    }
    std::printf("\n  ");
    for (unsigned i = 0; i < 16; ++i)
        std::printf("%X", truth[i]);
    std::printf("\n=> %u/16 recovered, all %s — 4 secret bits per "
                "recovered nibble,\n   from ONE decryption.\n",
                recovered, correct == recovered ? "correct" : "NOT ok");
    return 0;
}
