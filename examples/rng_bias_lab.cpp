/**
 * @file
 * Scenario: attacking randomness (§7.1 + §7.2).
 *
 * An enclave draws a hardware random number and acts on it — think
 * lottery draws, nonce generation, randomized audits.  This example
 * walks the paper's generalization chapter end to end:
 *
 *   1. With a hypothetical non-serializing RDRAND, page-fault replay
 *      observes every speculative draw over a cache channel.
 *   2. With Intel's real (serializing) RDRAND, the same attack
 *      observes nothing — the fence works, as §7.2 concludes.
 *   3. With a TSX transaction as the replay handle (§7.1), the draw
 *      RETIRES inside the transaction before the attacker-induced
 *      abort, so the fence no longer helps — and by aborting until
 *      the observed draw is favourable, the attacker biases the value
 *      the enclave finally commits: an integrity attack.
 */

#include <cstdio>

#include "attack/rdrand_bias.hh"
#include "attack/tsx_replay.hh"

using namespace uscope;

int
main()
{
    std::printf("[1] page-fault replay vs non-serializing RDRAND\n");
    {
        attack::RdrandConfig config;
        config.serializingRdrand = false;
        const auto result = attack::runRdrandObservation(config);
        std::printf("    observed %llu/%zu speculative draws over the "
                    "cache channel\n",
                    static_cast<unsigned long long>(result.observations),
                    result.observedBits.size());
    }

    std::printf("[2] page-fault replay vs real (serializing) RDRAND\n");
    {
        attack::RdrandConfig config;
        config.serializingRdrand = true;
        const auto result = attack::runRdrandObservation(config);
        std::printf("    observed %llu/%zu draws — \"the attack does "
                    "not go through\" (§7.2)\n",
                    static_cast<unsigned long long>(result.observations),
                    result.observedBits.size());
    }

    std::printf("[3] TSX-abort replay vs serializing RDRAND (bias!)\n");
    for (int desired : {0, 1}) {
        unsigned biased = 0;
        unsigned trials = 10;
        std::uint64_t aborts = 0;
        for (unsigned trial = 0; trial < trials; ++trial) {
            attack::TsxBiasConfig config;
            config.desiredBit = desired;
            config.seed = 2000 + 31 * trial + desired;
            const auto result = attack::runTsxRdrandBias(config);
            biased += result.biased;
            aborts += result.abortsIssued;
        }
        std::printf("    want bit %d: committed it in %u/%u runs "
                    "(%llu aborts total)\n",
                    desired, biased, trials,
                    static_cast<unsigned long long>(aborts));
    }

    std::printf("\nLesson (§7): fencing one instruction closes one replay\n");
    std::printf("mechanism; transactions reopen the window *after*\n");
    std::printf("retirement, turning a privacy attack into an integrity\n");
    std::printf("attack on the enclave's randomness.\n");
    return 0;
}
