/**
 * @file
 * Quickstart: the smallest complete microarchitectural replay attack.
 *
 * We build a machine, load a "victim" whose sensitive load touches a
 * secret-dependent cache line exactly once, and use MicroScope to
 * replay that one access twenty times behind a page-faulting load —
 * recovering the secret from a single logical run.
 *
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "core/microscope.hh"
#include "cpu/program.hh"
#include "os/machine.hh"

using namespace uscope;

int
main()
{
    // 1. A machine: OoO SMT core + caches + MMU + kernel.
    os::Machine machine;
    auto &kernel = machine.kernel();

    // 2. A victim process.  Its secret (here: 5) selects which cache
    //    line of a transmit page a single load touches.
    const os::Pid victim = kernel.createProcess("victim");
    const VAddr handle_page = kernel.allocVirtual(victim, pageSize);
    const VAddr transmit_page = kernel.allocVirtual(victim, pageSize);
    const VAddr secret_page = kernel.allocVirtual(victim, pageSize);

    const std::uint64_t secret = 5;
    kernel.writeVirtual(victim, secret_page, &secret, 8);
    // Seal it: from here on, the OS cannot read the secret directly.
    kernel.declareEnclave(victim, secret_page, pageSize);

    cpu::ProgramBuilder program;
    program.movi(1, static_cast<std::int64_t>(handle_page))
        .movi(2, static_cast<std::int64_t>(secret_page))
        .movi(3, static_cast<std::int64_t>(transmit_page))
        .ld(4, 2, 0)      // load the secret (enclave memory)
        .ld(5, 1, 0)      // <-- the replay handle (public page)
        .shli(6, 4, 6)    // secret * 64
        .add(6, 3, 6)
        .ld(7, 6, 0)      // transmit: touches line[secret] ONCE
        .halt();

    // 3. The attack: replay the window behind the handle and probe
    //    the transmit page after every replay (Prime+Probe style).
    const PAddr transmit_pa = *kernel.translate(victim, transmit_page);
    std::array<unsigned, 64> votes{};

    ms::Microscope scope(machine);
    ms::AttackRecipe recipe;
    recipe.victim = victim;
    recipe.replayHandle = handle_page;
    recipe.confidence = 20;  // replays before releasing the victim
    recipe.onReplay = [&](const ms::ReplayEvent &) {
        for (unsigned line = 0; line < 64; ++line) {
            if (kernel.timedProbePhys(transmit_pa + line * lineSize)
                    .latency < 100) {
                ++votes[line];
            }
        }
        return true;
    };
    recipe.beforeResume = [&](const ms::ReplayEvent &) {
        kernel.primeRange(transmit_pa, pageSize);
    };
    scope.setRecipe(std::move(recipe));

    // 4. Run: arm, start the victim once, let it finish.
    kernel.primeRange(transmit_pa, pageSize);
    scope.arm();
    kernel.startOnContext(victim, 0,
                          std::make_shared<const cpu::Program>(
                              program.build()));
    machine.runUntilHalted(0, 10'000'000);

    // 5. The verdict.
    unsigned best_line = 0;
    for (unsigned line = 0; line < 64; ++line)
        if (votes[line] > votes[best_line])
            best_line = line;

    std::printf("replays of the window : %llu\n",
                static_cast<unsigned long long>(
                    scope.stats().totalReplays));
    std::printf("votes for line %u     : %u/20\n", best_line,
                votes[best_line]);
    std::printf("recovered secret      : %u (truth: %llu)  -> %s\n",
                best_line, static_cast<unsigned long long>(secret),
                best_line == secret ? "SUCCESS" : "failure");
    std::printf("victim ran            : exactly once "
                "(retired %llu instructions)\n",
                static_cast<unsigned long long>(
                    machine.core().stats(0).retired));
    return best_line == secret ? 0 : 1;
}
