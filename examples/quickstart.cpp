/**
 * @file
 * Quickstart: the smallest complete microarchitectural replay attack,
 * then the same attack as a multi-threaded *campaign* (src/exp).
 *
 * We build a machine, load a "victim" whose sensitive load touches a
 * secret-dependent cache line exactly once, and use MicroScope to
 * replay that one access twenty times behind a page-faulting load —
 * recovering the secret from a single logical run.  The campaign
 * section then sweeps the attack over eight random secrets, one
 * private Machine per trial, sharded across worker threads.
 *
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "common/random.hh"
#include "core/microscope.hh"
#include "cpu/program.hh"
#include "exp/campaign.hh"
#include "os/machine.hh"

using namespace uscope;

namespace
{

struct AttackOutcome
{
    unsigned bestLine = 0;
    unsigned votes = 0;
    std::uint64_t replays = 0;
    std::uint64_t retired = 0;
    Cycles cycles = 0;
};

/** The complete attack, end to end, on a private Machine. */
AttackOutcome
attackOnce(const os::MachineConfig &mcfg, std::uint64_t secret)
{
    // 1. A machine: OoO SMT core + caches + MMU + kernel.
    os::Machine machine(mcfg);
    auto &kernel = machine.kernel();

    // 2. A victim process.  Its secret selects which cache line of a
    //    transmit page a single load touches.
    const os::Pid victim = kernel.createProcess("victim");
    const VAddr handle_page = kernel.allocVirtual(victim, pageSize);
    const VAddr transmit_page = kernel.allocVirtual(victim, pageSize);
    const VAddr secret_page = kernel.allocVirtual(victim, pageSize);

    kernel.writeVirtual(victim, secret_page, &secret, 8);
    // Seal it: from here on, the OS cannot read the secret directly.
    kernel.declareEnclave(victim, secret_page, pageSize);

    cpu::ProgramBuilder program;
    program.movi(1, static_cast<std::int64_t>(handle_page))
        .movi(2, static_cast<std::int64_t>(secret_page))
        .movi(3, static_cast<std::int64_t>(transmit_page))
        .ld(4, 2, 0)      // load the secret (enclave memory)
        .ld(5, 1, 0)      // <-- the replay handle (public page)
        .shli(6, 4, 6)    // secret * 64
        .add(6, 3, 6)
        .ld(7, 6, 0)      // transmit: touches line[secret] ONCE
        .halt();

    // 3. The attack: replay the window behind the handle and probe
    //    the transmit page after every replay (Prime+Probe style).
    const PAddr transmit_pa = *kernel.translate(victim, transmit_page);
    std::array<unsigned, 64> votes{};

    ms::Microscope scope(machine);
    ms::AttackRecipe recipe;
    recipe.victim = victim;
    recipe.replayHandle = handle_page;
    recipe.confidence = 20;  // replays before releasing the victim
    recipe.onReplay = [&](const ms::ReplayEvent &) {
        for (unsigned line = 0; line < 64; ++line) {
            if (kernel.timedProbePhys(transmit_pa + line * lineSize)
                    .latency < 100) {
                ++votes[line];
            }
        }
        return true;
    };
    recipe.beforeResume = [&](const ms::ReplayEvent &) {
        kernel.primeRange(transmit_pa, pageSize);
    };
    scope.setRecipe(std::move(recipe));

    // 4. Run: arm, start the victim once, let it finish.
    kernel.primeRange(transmit_pa, pageSize);
    scope.arm();
    kernel.startOnContext(victim, 0,
                          std::make_shared<const cpu::Program>(
                              program.build()));
    machine.runUntilHalted(0, 10'000'000);

    // 5. The verdict.
    AttackOutcome outcome;
    for (unsigned line = 0; line < 64; ++line)
        if (votes[line] > votes[outcome.bestLine])
            outcome.bestLine = line;
    outcome.votes = votes[outcome.bestLine];
    outcome.replays = scope.stats().totalReplays;
    outcome.retired = machine.core().stats(0).retired;
    outcome.cycles = machine.cycle();
    return outcome;
}

} // namespace

int
main()
{
    const std::uint64_t secret = 5;
    const AttackOutcome outcome = attackOnce(os::MachineConfig{}, secret);

    std::printf("replays of the window : %llu\n",
                static_cast<unsigned long long>(outcome.replays));
    std::printf("votes for line %u     : %u/20\n", outcome.bestLine,
                outcome.votes);
    std::printf("recovered secret      : %u (truth: %llu)  -> %s\n",
                outcome.bestLine,
                static_cast<unsigned long long>(secret),
                outcome.bestLine == secret ? "SUCCESS" : "failure");
    std::printf("victim ran            : exactly once "
                "(retired %llu instructions)\n",
                static_cast<unsigned long long>(outcome.retired));

    // 6. Run a campaign in 10 lines: the same attack swept over eight
    //    random secrets — one private Machine per trial, sharded over
    //    a thread pool, deterministic for any worker count (src/exp).
    exp::CampaignSpec spec;
    spec.name = "quickstart_campaign";
    spec.trials = 8;
    spec.body = [](const exp::TrialContext &ctx) {
        const std::uint64_t trial_secret = Rng(ctx.seed).below(64);
        exp::TrialOutput out;
        out.metric.add(
            attackOnce(ctx.machine, trial_secret).bestLine ==
            trial_secret);
        return out;
    };
    const exp::CampaignResult sweep = exp::runCampaign(spec);

    std::printf("campaign              : recovered %.0f%% of %zu random "
                "secrets on %u worker(s)\n",
                sweep.aggregate.metric.mean() * 100, sweep.trialCount,
                sweep.workers);

    return outcome.bestLine == secret &&
                   sweep.aggregate.metric.mean() == 1.0
               ? 0
               : 1;
}
