/**
 * @file
 * Scenario: a defender evaluating countermeasures (§8).
 *
 * You maintain an enclave runtime and must decide what to deploy
 * against microarchitectural replay attacks.  This example runs the
 * paper's candidate defenses against the live attack and prints a
 * decision-ready summary: what each defense stops, what it misses,
 * and what it costs.
 */

#include <cstdio>

#include "defense/dejavu.hh"
#include "defense/fence_defense.hh"
#include "defense/pf_oblivious.hh"
#include "defense/tsgx.hh"

using namespace uscope;

int
main()
{
    std::printf("Defense evaluation lab: port-contention + cache replay "
                "attacks\nagainst each §8 countermeasure.\n\n");

    std::printf("%-26s %-18s %-22s %s\n", "defense", "stops attack?",
                "residual leak", "cost");

    {
        const auto fence = defense::runFenceAblation(42, 3000);
        std::printf("%-26s %-18s %-22s %.2f%% on faulting code\n",
                    "fence on pipeline flush",
                    fence.attackDefeated ? "YES" : "no",
                    fence.attackDefeated ? "none observed"
                                         : "window persists",
                    fence.benignOverhead * 100);
    }
    {
        defense::TsgxConfig config;
        config.secret = true;
        const auto tsgx = defense::runTsgxAttack(config);
        std::printf("%-26s %-18s %-22s app killed after N faults\n",
                    "T-SGX (TSX wrap, N=10)",
                    tsgx.inferredDividesCache ? "no" : "partially",
                    tsgx.inferredDividesCache
                        ? "N-1 windows leak secret"
                        : "-");
    }
    {
        defense::DejavuConfig config;
        config.replays = 10;
        const auto dejavu = defense::runDejavuExperiment(config);
        defense::DejavuConfig masked;
        masked.replays = 2;
        const auto low = defense::runDejavuExperiment(masked);
        std::printf("%-26s %-18s %-22s clock thread + checks\n",
                    "Deja Vu (ref. clock)",
                    dejavu.detected && !dejavu.secretExtracted
                        ? "YES"
                        : "detects late",
                    low.detected ? "-"
                                 : "short campaigns hide");
    }
    {
        defense::PfObliviousConfig config;
        config.secret = true;
        const auto pfo = defense::runPfObliviousExperiment(config);
        std::printf("%-26s %-18s %-22s redundant mem accesses\n",
                    "PF-obliviousness",
                    pfo.inferenceCorrect ? "no" : "partially",
                    pfo.inferenceCorrect
                        ? "ports leak; +handles"
                        : "-");
    }

    std::printf("\nConclusion (matches §8): point defenses either leave\n");
    std::printf("replay windows (T-SGX), detect after the fact (Deja Vu),\n");
    std::printf("or actively help the attacker (PF-obliviousness); only\n");
    std::printf("fencing pipeline flushes closes the channel, at a small\n");
    std::printf("cost on fault-heavy code.\n");
    return 0;
}
