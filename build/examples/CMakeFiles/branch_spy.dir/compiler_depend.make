# Empty compiler generated dependencies file for branch_spy.
# This may be replaced when dependencies are built.
