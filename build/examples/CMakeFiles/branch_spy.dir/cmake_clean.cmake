file(REMOVE_RECURSE
  "CMakeFiles/branch_spy.dir/branch_spy.cpp.o"
  "CMakeFiles/branch_spy.dir/branch_spy.cpp.o.d"
  "branch_spy"
  "branch_spy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/branch_spy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
