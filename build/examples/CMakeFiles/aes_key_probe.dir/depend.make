# Empty dependencies file for aes_key_probe.
# This may be replaced when dependencies are built.
