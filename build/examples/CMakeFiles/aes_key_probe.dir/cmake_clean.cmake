file(REMOVE_RECURSE
  "CMakeFiles/aes_key_probe.dir/aes_key_probe.cpp.o"
  "CMakeFiles/aes_key_probe.dir/aes_key_probe.cpp.o.d"
  "aes_key_probe"
  "aes_key_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aes_key_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
