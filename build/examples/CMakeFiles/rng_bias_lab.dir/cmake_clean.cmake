file(REMOVE_RECURSE
  "CMakeFiles/rng_bias_lab.dir/rng_bias_lab.cpp.o"
  "CMakeFiles/rng_bias_lab.dir/rng_bias_lab.cpp.o.d"
  "rng_bias_lab"
  "rng_bias_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rng_bias_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
