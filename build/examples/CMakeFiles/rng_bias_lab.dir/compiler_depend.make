# Empty compiler generated dependencies file for rng_bias_lab.
# This may be replaced when dependencies are built.
