file(REMOVE_RECURSE
  "CMakeFiles/defense_lab.dir/defense_lab.cpp.o"
  "CMakeFiles/defense_lab.dir/defense_lab.cpp.o.d"
  "defense_lab"
  "defense_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/defense_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
