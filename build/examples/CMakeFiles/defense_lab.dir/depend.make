# Empty dependencies file for defense_lab.
# This may be replaced when dependencies are built.
