file(REMOVE_RECURSE
  "CMakeFiles/fig11_aes_replay.dir/fig11_aes_replay.cc.o"
  "CMakeFiles/fig11_aes_replay.dir/fig11_aes_replay.cc.o.d"
  "fig11_aes_replay"
  "fig11_aes_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_aes_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
