# Empty dependencies file for fig11_aes_replay.
# This may be replaced when dependencies are built.
