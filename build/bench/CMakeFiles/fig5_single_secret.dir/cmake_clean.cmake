file(REMOVE_RECURSE
  "CMakeFiles/fig5_single_secret.dir/fig5_single_secret.cc.o"
  "CMakeFiles/fig5_single_secret.dir/fig5_single_secret.cc.o.d"
  "fig5_single_secret"
  "fig5_single_secret.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_single_secret.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
