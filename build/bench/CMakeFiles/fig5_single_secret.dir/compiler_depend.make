# Empty compiler generated dependencies file for fig5_single_secret.
# This may be replaced when dependencies are built.
