# Empty dependencies file for table2_api.
# This may be replaced when dependencies are built.
