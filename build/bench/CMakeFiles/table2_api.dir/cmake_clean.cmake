file(REMOVE_RECURSE
  "CMakeFiles/table2_api.dir/table2_api.cc.o"
  "CMakeFiles/table2_api.dir/table2_api.cc.o.d"
  "table2_api"
  "table2_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
