# Empty compiler generated dependencies file for ablate_defenses.
# This may be replaced when dependencies are built.
