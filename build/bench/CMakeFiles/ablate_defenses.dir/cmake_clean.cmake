file(REMOVE_RECURSE
  "CMakeFiles/ablate_defenses.dir/ablate_defenses.cc.o"
  "CMakeFiles/ablate_defenses.dir/ablate_defenses.cc.o.d"
  "ablate_defenses"
  "ablate_defenses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_defenses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
