# Empty dependencies file for ablate_microarch.
# This may be replaced when dependencies are built.
