file(REMOVE_RECURSE
  "CMakeFiles/ablate_microarch.dir/ablate_microarch.cc.o"
  "CMakeFiles/ablate_microarch.dir/ablate_microarch.cc.o.d"
  "ablate_microarch"
  "ablate_microarch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_microarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
