# Empty dependencies file for ablate_pagewalk_tuning.
# This may be replaced when dependencies are built.
