file(REMOVE_RECURSE
  "CMakeFiles/ablate_pagewalk_tuning.dir/ablate_pagewalk_tuning.cc.o"
  "CMakeFiles/ablate_pagewalk_tuning.dir/ablate_pagewalk_tuning.cc.o.d"
  "ablate_pagewalk_tuning"
  "ablate_pagewalk_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_pagewalk_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
