# Empty dependencies file for fig10_port_contention.
# This may be replaced when dependencies are built.
