# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_smoke[1]_include.cmake")
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_vm[1]_include.cmake")
include("/root/repo/build/tests/test_cpu[1]_include.cmake")
include("/root/repo/build/tests/test_os[1]_include.cmake")
include("/root/repo/build/tests/test_microscope[1]_include.cmake")
include("/root/repo/build/tests/test_attacks[1]_include.cmake")
include("/root/repo/build/tests/test_defense[1]_include.cmake")
include("/root/repo/build/tests/test_props[1]_include.cmake")
include("/root/repo/build/tests/test_aes[1]_include.cmake")
include("/root/repo/build/tests/test_crypto[1]_include.cmake")
