file(REMOVE_RECURSE
  "CMakeFiles/test_microscope.dir/test_microscope.cc.o"
  "CMakeFiles/test_microscope.dir/test_microscope.cc.o.d"
  "test_microscope"
  "test_microscope.pdb"
  "test_microscope[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_microscope.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
