# Empty compiler generated dependencies file for test_microscope.
# This may be replaced when dependencies are built.
