
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_mem.cc" "tests/CMakeFiles/test_mem.dir/test_mem.cc.o" "gcc" "tests/CMakeFiles/test_mem.dir/test_mem.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/defense/CMakeFiles/uscope_defense.dir/DependInfo.cmake"
  "/root/repo/build/src/attack/CMakeFiles/uscope_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/uscope_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/uscope_core.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/uscope_os.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/uscope_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/uscope_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/uscope_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/uscope_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
