file(REMOVE_RECURSE
  "CMakeFiles/uscope_crypto.dir/aes.cc.o"
  "CMakeFiles/uscope_crypto.dir/aes.cc.o.d"
  "CMakeFiles/uscope_crypto.dir/aes_codegen.cc.o"
  "CMakeFiles/uscope_crypto.dir/aes_codegen.cc.o.d"
  "libuscope_crypto.a"
  "libuscope_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uscope_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
