# Empty dependencies file for uscope_crypto.
# This may be replaced when dependencies are built.
