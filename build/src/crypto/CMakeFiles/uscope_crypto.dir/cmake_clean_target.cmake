file(REMOVE_RECURSE
  "libuscope_crypto.a"
)
