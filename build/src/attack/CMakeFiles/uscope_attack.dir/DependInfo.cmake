
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attack/aes_attack.cc" "src/attack/CMakeFiles/uscope_attack.dir/aes_attack.cc.o" "gcc" "src/attack/CMakeFiles/uscope_attack.dir/aes_attack.cc.o.d"
  "/root/repo/src/attack/control_flow.cc" "src/attack/CMakeFiles/uscope_attack.dir/control_flow.cc.o" "gcc" "src/attack/CMakeFiles/uscope_attack.dir/control_flow.cc.o.d"
  "/root/repo/src/attack/loop_secret.cc" "src/attack/CMakeFiles/uscope_attack.dir/loop_secret.cc.o" "gcc" "src/attack/CMakeFiles/uscope_attack.dir/loop_secret.cc.o.d"
  "/root/repo/src/attack/mispredict_replay.cc" "src/attack/CMakeFiles/uscope_attack.dir/mispredict_replay.cc.o" "gcc" "src/attack/CMakeFiles/uscope_attack.dir/mispredict_replay.cc.o.d"
  "/root/repo/src/attack/monitor.cc" "src/attack/CMakeFiles/uscope_attack.dir/monitor.cc.o" "gcc" "src/attack/CMakeFiles/uscope_attack.dir/monitor.cc.o.d"
  "/root/repo/src/attack/port_contention.cc" "src/attack/CMakeFiles/uscope_attack.dir/port_contention.cc.o" "gcc" "src/attack/CMakeFiles/uscope_attack.dir/port_contention.cc.o.d"
  "/root/repo/src/attack/rdrand_bias.cc" "src/attack/CMakeFiles/uscope_attack.dir/rdrand_bias.cc.o" "gcc" "src/attack/CMakeFiles/uscope_attack.dir/rdrand_bias.cc.o.d"
  "/root/repo/src/attack/single_secret.cc" "src/attack/CMakeFiles/uscope_attack.dir/single_secret.cc.o" "gcc" "src/attack/CMakeFiles/uscope_attack.dir/single_secret.cc.o.d"
  "/root/repo/src/attack/tsx_replay.cc" "src/attack/CMakeFiles/uscope_attack.dir/tsx_replay.cc.o" "gcc" "src/attack/CMakeFiles/uscope_attack.dir/tsx_replay.cc.o.d"
  "/root/repo/src/attack/victims.cc" "src/attack/CMakeFiles/uscope_attack.dir/victims.cc.o" "gcc" "src/attack/CMakeFiles/uscope_attack.dir/victims.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/uscope_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/uscope_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/uscope_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/uscope_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/uscope_os.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/uscope_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/uscope_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
