file(REMOVE_RECURSE
  "CMakeFiles/uscope_attack.dir/aes_attack.cc.o"
  "CMakeFiles/uscope_attack.dir/aes_attack.cc.o.d"
  "CMakeFiles/uscope_attack.dir/control_flow.cc.o"
  "CMakeFiles/uscope_attack.dir/control_flow.cc.o.d"
  "CMakeFiles/uscope_attack.dir/loop_secret.cc.o"
  "CMakeFiles/uscope_attack.dir/loop_secret.cc.o.d"
  "CMakeFiles/uscope_attack.dir/mispredict_replay.cc.o"
  "CMakeFiles/uscope_attack.dir/mispredict_replay.cc.o.d"
  "CMakeFiles/uscope_attack.dir/monitor.cc.o"
  "CMakeFiles/uscope_attack.dir/monitor.cc.o.d"
  "CMakeFiles/uscope_attack.dir/port_contention.cc.o"
  "CMakeFiles/uscope_attack.dir/port_contention.cc.o.d"
  "CMakeFiles/uscope_attack.dir/rdrand_bias.cc.o"
  "CMakeFiles/uscope_attack.dir/rdrand_bias.cc.o.d"
  "CMakeFiles/uscope_attack.dir/single_secret.cc.o"
  "CMakeFiles/uscope_attack.dir/single_secret.cc.o.d"
  "CMakeFiles/uscope_attack.dir/tsx_replay.cc.o"
  "CMakeFiles/uscope_attack.dir/tsx_replay.cc.o.d"
  "CMakeFiles/uscope_attack.dir/victims.cc.o"
  "CMakeFiles/uscope_attack.dir/victims.cc.o.d"
  "libuscope_attack.a"
  "libuscope_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uscope_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
