file(REMOVE_RECURSE
  "libuscope_attack.a"
)
