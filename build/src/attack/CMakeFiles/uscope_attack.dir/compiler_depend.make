# Empty compiler generated dependencies file for uscope_attack.
# This may be replaced when dependencies are built.
