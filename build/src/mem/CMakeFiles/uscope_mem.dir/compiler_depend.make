# Empty compiler generated dependencies file for uscope_mem.
# This may be replaced when dependencies are built.
