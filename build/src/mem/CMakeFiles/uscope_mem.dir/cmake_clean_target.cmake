file(REMOVE_RECURSE
  "libuscope_mem.a"
)
