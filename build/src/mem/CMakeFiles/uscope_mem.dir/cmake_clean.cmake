file(REMOVE_RECURSE
  "CMakeFiles/uscope_mem.dir/cache.cc.o"
  "CMakeFiles/uscope_mem.dir/cache.cc.o.d"
  "CMakeFiles/uscope_mem.dir/hierarchy.cc.o"
  "CMakeFiles/uscope_mem.dir/hierarchy.cc.o.d"
  "CMakeFiles/uscope_mem.dir/phys_mem.cc.o"
  "CMakeFiles/uscope_mem.dir/phys_mem.cc.o.d"
  "libuscope_mem.a"
  "libuscope_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uscope_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
