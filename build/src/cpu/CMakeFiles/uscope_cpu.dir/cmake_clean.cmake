file(REMOVE_RECURSE
  "CMakeFiles/uscope_cpu.dir/core.cc.o"
  "CMakeFiles/uscope_cpu.dir/core.cc.o.d"
  "CMakeFiles/uscope_cpu.dir/isa.cc.o"
  "CMakeFiles/uscope_cpu.dir/isa.cc.o.d"
  "CMakeFiles/uscope_cpu.dir/ports.cc.o"
  "CMakeFiles/uscope_cpu.dir/ports.cc.o.d"
  "CMakeFiles/uscope_cpu.dir/predictor.cc.o"
  "CMakeFiles/uscope_cpu.dir/predictor.cc.o.d"
  "CMakeFiles/uscope_cpu.dir/program.cc.o"
  "CMakeFiles/uscope_cpu.dir/program.cc.o.d"
  "libuscope_cpu.a"
  "libuscope_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uscope_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
