file(REMOVE_RECURSE
  "libuscope_cpu.a"
)
