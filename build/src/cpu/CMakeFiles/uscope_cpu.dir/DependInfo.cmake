
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpu/core.cc" "src/cpu/CMakeFiles/uscope_cpu.dir/core.cc.o" "gcc" "src/cpu/CMakeFiles/uscope_cpu.dir/core.cc.o.d"
  "/root/repo/src/cpu/isa.cc" "src/cpu/CMakeFiles/uscope_cpu.dir/isa.cc.o" "gcc" "src/cpu/CMakeFiles/uscope_cpu.dir/isa.cc.o.d"
  "/root/repo/src/cpu/ports.cc" "src/cpu/CMakeFiles/uscope_cpu.dir/ports.cc.o" "gcc" "src/cpu/CMakeFiles/uscope_cpu.dir/ports.cc.o.d"
  "/root/repo/src/cpu/predictor.cc" "src/cpu/CMakeFiles/uscope_cpu.dir/predictor.cc.o" "gcc" "src/cpu/CMakeFiles/uscope_cpu.dir/predictor.cc.o.d"
  "/root/repo/src/cpu/program.cc" "src/cpu/CMakeFiles/uscope_cpu.dir/program.cc.o" "gcc" "src/cpu/CMakeFiles/uscope_cpu.dir/program.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/uscope_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/uscope_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/uscope_vm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
