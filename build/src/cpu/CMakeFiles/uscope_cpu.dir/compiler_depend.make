# Empty compiler generated dependencies file for uscope_cpu.
# This may be replaced when dependencies are built.
