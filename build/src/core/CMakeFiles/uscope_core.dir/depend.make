# Empty dependencies file for uscope_core.
# This may be replaced when dependencies are built.
