file(REMOVE_RECURSE
  "libuscope_core.a"
)
