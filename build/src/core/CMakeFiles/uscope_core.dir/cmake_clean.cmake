file(REMOVE_RECURSE
  "CMakeFiles/uscope_core.dir/microscope.cc.o"
  "CMakeFiles/uscope_core.dir/microscope.cc.o.d"
  "libuscope_core.a"
  "libuscope_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uscope_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
