# Empty compiler generated dependencies file for uscope_vm.
# This may be replaced when dependencies are built.
