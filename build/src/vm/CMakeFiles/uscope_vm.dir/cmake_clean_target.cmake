file(REMOVE_RECURSE
  "libuscope_vm.a"
)
