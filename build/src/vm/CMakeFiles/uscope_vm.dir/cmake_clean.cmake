file(REMOVE_RECURSE
  "CMakeFiles/uscope_vm.dir/frame_alloc.cc.o"
  "CMakeFiles/uscope_vm.dir/frame_alloc.cc.o.d"
  "CMakeFiles/uscope_vm.dir/mmu.cc.o"
  "CMakeFiles/uscope_vm.dir/mmu.cc.o.d"
  "CMakeFiles/uscope_vm.dir/page_table.cc.o"
  "CMakeFiles/uscope_vm.dir/page_table.cc.o.d"
  "CMakeFiles/uscope_vm.dir/pwc.cc.o"
  "CMakeFiles/uscope_vm.dir/pwc.cc.o.d"
  "CMakeFiles/uscope_vm.dir/tlb.cc.o"
  "CMakeFiles/uscope_vm.dir/tlb.cc.o.d"
  "CMakeFiles/uscope_vm.dir/walker.cc.o"
  "CMakeFiles/uscope_vm.dir/walker.cc.o.d"
  "libuscope_vm.a"
  "libuscope_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uscope_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
