file(REMOVE_RECURSE
  "CMakeFiles/uscope_common.dir/logging.cc.o"
  "CMakeFiles/uscope_common.dir/logging.cc.o.d"
  "CMakeFiles/uscope_common.dir/random.cc.o"
  "CMakeFiles/uscope_common.dir/random.cc.o.d"
  "CMakeFiles/uscope_common.dir/stats.cc.o"
  "CMakeFiles/uscope_common.dir/stats.cc.o.d"
  "libuscope_common.a"
  "libuscope_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uscope_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
