file(REMOVE_RECURSE
  "libuscope_common.a"
)
