# Empty compiler generated dependencies file for uscope_common.
# This may be replaced when dependencies are built.
