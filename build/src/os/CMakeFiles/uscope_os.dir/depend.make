# Empty dependencies file for uscope_os.
# This may be replaced when dependencies are built.
