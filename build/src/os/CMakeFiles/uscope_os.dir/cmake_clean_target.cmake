file(REMOVE_RECURSE
  "libuscope_os.a"
)
