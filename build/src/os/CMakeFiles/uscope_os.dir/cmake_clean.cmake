file(REMOVE_RECURSE
  "CMakeFiles/uscope_os.dir/kernel.cc.o"
  "CMakeFiles/uscope_os.dir/kernel.cc.o.d"
  "CMakeFiles/uscope_os.dir/machine.cc.o"
  "CMakeFiles/uscope_os.dir/machine.cc.o.d"
  "libuscope_os.a"
  "libuscope_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uscope_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
