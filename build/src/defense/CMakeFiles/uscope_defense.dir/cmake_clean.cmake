file(REMOVE_RECURSE
  "CMakeFiles/uscope_defense.dir/dejavu.cc.o"
  "CMakeFiles/uscope_defense.dir/dejavu.cc.o.d"
  "CMakeFiles/uscope_defense.dir/fence_defense.cc.o"
  "CMakeFiles/uscope_defense.dir/fence_defense.cc.o.d"
  "CMakeFiles/uscope_defense.dir/pf_oblivious.cc.o"
  "CMakeFiles/uscope_defense.dir/pf_oblivious.cc.o.d"
  "CMakeFiles/uscope_defense.dir/tsgx.cc.o"
  "CMakeFiles/uscope_defense.dir/tsgx.cc.o.d"
  "libuscope_defense.a"
  "libuscope_defense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uscope_defense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
