# Empty compiler generated dependencies file for uscope_defense.
# This may be replaced when dependencies are built.
