file(REMOVE_RECURSE
  "libuscope_defense.a"
)
