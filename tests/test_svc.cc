/**
 * @file
 * Campaign service suite (DESIGN.md §13).
 *
 * Three layers:
 *
 *  - Pure units: frame splitting under pathological fragmentation,
 *    the shard scheduler's steal/death state machine, seed-namespace
 *    derivation, request round-trips, registry construction.
 *  - End-to-end determinism: a real daemon (in a thread) with real
 *    worker *processes* (fork + exec of this very test binary — see
 *    main() below) must produce fingerprints byte-identical to
 *    in-process CampaignRunner runs of the same request.
 *  - The hard cases the service exists for: a worker SIGKILLed
 *    mid-shard (steal + checkpoint-resume must keep the fingerprint
 *    byte-identical), and two tenants submitting the same request
 *    under different namespaces concurrently (disjoint, individually
 *    reproducible results).
 *  - Observability (DESIGN.md §14): the stats request/reply frames,
 *    per-worker trial credits summing to campaign totals across any
 *    steal/kill history, structured error replies to malformed
 *    frames, obs-level fingerprint invariance through the service,
 *    and per-trial trace spills merging into one per-worker-lane
 *    Chrome trace.
 *  - Lifecycle + failure handling (DESIGN.md §16): cancellation with
 *    partial aggregates and resumable checkpoints, attach-after-
 *    disconnect with byte-identical fingerprints, deadline expiry,
 *    the stuck-trial warn -> kill -> TimedOut ladder, graceful
 *    degradation with every worker dead (queue + shed + backoff),
 *    SIGTERM/drain persistence with restart auto-resume, and the
 *    whole e2e layer re-run under the ChaosPlan preset.
 *
 * The e2e tests use the machine-less "selftest" recipe: microseconds
 * per trial, so kill/steal/respawn round-trips run in test time.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include "common/logging.hh"
#include "exp/campaign.hh"
#include "obs/chrome_trace.hh"
#include "obs/prof.hh"
#include "svc/chaos.hh"
#include "svc/client.hh"
#include "svc/daemon.hh"
#include "svc/registry.hh"
#include "svc/shard.hh"
#include "svc/tunables.hh"
#include "svc/wire.hh"
#include "svc/worker.hh"

using namespace uscope;

namespace
{

// ---------------------------------------------------------------------
// Wire framing.
// ---------------------------------------------------------------------

TEST(SvcWire, FrameRoundTripsThroughSplitter)
{
    const std::string payload = "{\"type\":\"ping\"}";
    const std::string frame = svc::encodeFrame(payload);
    ASSERT_EQ(frame.size(), payload.size() + 4);

    svc::FrameSplitter splitter;
    splitter.feed(frame.data(), frame.size());
    const auto got = splitter.next();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, payload);
    EXPECT_FALSE(splitter.next().has_value());
}

TEST(SvcWire, SplitterHandlesPathologicalFragmentation)
{
    // Three frames — including an empty payload — delivered one byte
    // at a time must pop intact and in order.
    const std::vector<std::string> payloads = {
        "first", "", std::string(1000, 'x')};
    std::string stream;
    for (const std::string &p : payloads)
        stream += svc::encodeFrame(p);

    svc::FrameSplitter splitter;
    std::vector<std::string> got;
    for (char c : stream) {
        splitter.feed(&c, 1);
        while (auto frame = splitter.next())
            got.push_back(*frame);
    }
    EXPECT_EQ(got, payloads);
    EXPECT_FALSE(splitter.corrupt());
}

TEST(SvcWire, OversizedFrameMarksStreamCorrupt)
{
    svc::FrameSplitter splitter;
    const char huge[4] = {'\x7f', '\x00', '\x00', '\x00'};
    splitter.feed(huge, 4);
    EXPECT_TRUE(splitter.corrupt());
    EXPECT_FALSE(splitter.next().has_value());
}

TEST(SvcWire, LengthPrefixSplitAcrossFeedsReassembles)
{
    // The length prefix itself arriving one byte per feed() — the
    // nastiest torn-write shape a chaos-injected sender produces.
    const std::string payload = "{\"type\":\"pong\"}";
    const std::string frame = svc::encodeFrame(payload);
    svc::FrameSplitter splitter;
    for (std::size_t i = 0; i < 4; ++i) {
        splitter.feed(frame.data() + i, 1);
        EXPECT_FALSE(splitter.next().has_value());
        EXPECT_FALSE(splitter.corrupt());
    }
    splitter.feed(frame.data() + 4, frame.size() - 4);
    const auto got = splitter.next();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, payload);
}

TEST(SvcWire, MegabyteFrameByteAtATimeSurvives)
{
    std::string payload(1u << 20, '\0');
    for (std::size_t i = 0; i < payload.size(); ++i)
        payload[i] = static_cast<char>('a' + (i % 23));
    const std::string frame = svc::encodeFrame(payload);
    svc::FrameSplitter splitter;
    for (char c : frame)
        splitter.feed(&c, 1);
    const auto got = splitter.next();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, payload);
    EXPECT_FALSE(splitter.corrupt());
}

TEST(SvcWire, FrameAtExactlyTheCapIsNotCorrupt)
{
    // A prefix declaring exactly kMaxFrameBytes is legal: the
    // splitter waits for the payload without buffering anything it
    // was not fed (no pre-allocation on the declared length).
    static_assert(svc::kMaxFrameBytes == (256u << 20));
    svc::FrameSplitter splitter;
    const char at_cap[4] = {'\x10', '\x00', '\x00', '\x00'};
    splitter.feed(at_cap, 4);
    EXPECT_FALSE(splitter.corrupt());
    EXPECT_FALSE(splitter.next().has_value());
}

TEST(SvcWire, FrameOneOverTheCapIsCorrupt)
{
    svc::FrameSplitter splitter;
    const char over[4] = {'\x10', '\x00', '\x00', '\x01'};
    splitter.feed(over, 4);
    EXPECT_TRUE(splitter.corrupt());
    // Corruption is sticky: later well-formed frames are not parsed
    // out of an unsynchronizable stream.
    const std::string good = svc::encodeFrame("{}");
    splitter.feed(good.data(), good.size());
    EXPECT_FALSE(splitter.next().has_value());
    EXPECT_TRUE(splitter.corrupt());
}

TEST(SvcWire, ZeroLengthFramesBackToBackAllPop)
{
    std::string stream;
    for (int i = 0; i < 64; ++i)
        stream += svc::encodeFrame("");
    svc::FrameSplitter splitter;
    splitter.feed(stream.data(), stream.size());
    int popped = 0;
    while (auto frame = splitter.next()) {
        EXPECT_TRUE(frame->empty());
        ++popped;
    }
    EXPECT_EQ(popped, 64);
}

TEST(SvcWire, BufferedConnQueuesPastKernelAndDrainsInOrder)
{
    // The daemon-session mode: a peer that reads nothing while the
    // sender pushes more than the kernel buffers must never block
    // send() — bytes queue in user space (wantWrite() goes true) and
    // drain losslessly once flushOut() runs against a reading peer.
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    const int small = 16 * 1024;
    ::setsockopt(fds[0], SOL_SOCKET, SO_SNDBUF, &small,
                 sizeof small);
    svc::Conn sender(fds[0]);
    sender.setBuffered(true);

    const std::string blob(8 * 1024, 'z');
    constexpr int kFrames = 64;
    for (int i = 0; i < kFrames; ++i) {
        ASSERT_TRUE(sender.send(json::Value::object()
                                    .set("seq", i)
                                    .set("blob", blob)));
    }
    EXPECT_TRUE(sender.wantWrite()) << "512 KiB should not fit in a "
                                       "16 KiB kernel buffer";
    EXPECT_TRUE(sender.open());

    svc::FrameSplitter receiver;
    char buf[4096];
    int got = 0;
    for (int spins = 0; spins < 100000 && got < kFrames; ++spins) {
        sender.flushOut();
        const ssize_t n =
            ::recv(fds[1], buf, sizeof buf, MSG_DONTWAIT);
        if (n > 0)
            receiver.feed(buf, static_cast<std::size_t>(n));
        while (auto frame = receiver.next()) {
            const auto msg = json::Value::parse(*frame);
            ASSERT_TRUE(msg.has_value());
            ASSERT_NE(msg->get("seq"), nullptr);
            EXPECT_EQ(msg->get("seq")->asU64(),
                      static_cast<std::uint64_t>(got));
            ++got;
        }
    }
    EXPECT_EQ(got, kFrames);
    EXPECT_FALSE(sender.wantWrite());
    ::close(fds[1]);
}

// ---------------------------------------------------------------------
// Tunables + chaos plans.
// ---------------------------------------------------------------------

TEST(SvcTunables, EnvOverridesApply)
{
    ::setenv("USCOPE_SVC_HEARTBEAT_MS", "50", 1);
    ::setenv("USCOPE_SVC_HEARTBEAT_TIMEOUT_SEC", "1.5", 1);
    ::setenv("USCOPE_SVC_TRIAL_WARN_SEC", "0.5", 1);
    ::setenv("USCOPE_SVC_TRIAL_KILL_LIMIT", "7", 1);
    ::setenv("USCOPE_SVC_BACKOFF_INITIAL_SEC", "0.01", 1);
    ::setenv("USCOPE_SVC_BACKOFF_MAX_SEC", "2", 1);
    ::setenv("USCOPE_SVC_BACKOFF_JITTER", "0.5", 1);
    ::setenv("USCOPE_SVC_MAX_RESPAWNS", "9", 1);
    ::setenv("USCOPE_SVC_QUEUE_LIMIT", "3", 1);
    ::setenv("USCOPE_SVC_DRAIN_GRACE_SEC", "4", 1);
    const svc::Tunables tun = svc::Tunables::fromEnv();
    EXPECT_EQ(tun.heartbeatMs, 50);
    EXPECT_DOUBLE_EQ(tun.heartbeatTimeoutSec, 1.5);
    EXPECT_DOUBLE_EQ(tun.trialWarnSec, 0.5);
    EXPECT_EQ(tun.trialKillLimit, 7u);
    EXPECT_DOUBLE_EQ(tun.backoffInitialSec, 0.01);
    EXPECT_DOUBLE_EQ(tun.backoffMaxSec, 2.0);
    EXPECT_DOUBLE_EQ(tun.backoffJitter, 0.5);
    EXPECT_EQ(tun.maxRespawns, 9u);
    EXPECT_EQ(tun.queueLimit, 3u);
    EXPECT_DOUBLE_EQ(tun.drainGraceSec, 4.0);
    for (const char *var :
         {"USCOPE_SVC_HEARTBEAT_MS",
          "USCOPE_SVC_HEARTBEAT_TIMEOUT_SEC",
          "USCOPE_SVC_TRIAL_WARN_SEC",
          "USCOPE_SVC_TRIAL_KILL_LIMIT",
          "USCOPE_SVC_BACKOFF_INITIAL_SEC",
          "USCOPE_SVC_BACKOFF_MAX_SEC", "USCOPE_SVC_BACKOFF_JITTER",
          "USCOPE_SVC_MAX_RESPAWNS", "USCOPE_SVC_QUEUE_LIMIT",
          "USCOPE_SVC_DRAIN_GRACE_SEC"})
        ::unsetenv(var);
}

TEST(SvcTunables, BadValuesFallBackAndClampsHold)
{
    ::setenv("USCOPE_SVC_HEARTBEAT_MS", "banana", 1);
    ::setenv("USCOPE_SVC_BACKOFF_JITTER", "3.5", 1);
    ::setenv("USCOPE_SVC_BACKOFF_INITIAL_SEC", "10", 1);
    ::setenv("USCOPE_SVC_BACKOFF_MAX_SEC", "1", 1);
    const svc::Tunables defaults;
    const svc::Tunables tun = svc::Tunables::fromEnv();
    EXPECT_EQ(tun.heartbeatMs, defaults.heartbeatMs);
    EXPECT_LE(tun.backoffJitter, 1.0);
    // The cap can never sit below the initial delay.
    EXPECT_GE(tun.backoffMaxSec, tun.backoffInitialSec);
    ::unsetenv("USCOPE_SVC_HEARTBEAT_MS");
    ::unsetenv("USCOPE_SVC_BACKOFF_JITTER");
    ::unsetenv("USCOPE_SVC_BACKOFF_INITIAL_SEC");
    ::unsetenv("USCOPE_SVC_BACKOFF_MAX_SEC");
}

TEST(SvcChaos, OffAndEmptyParseInert)
{
    EXPECT_FALSE(svc::ChaosPlan::parse("").enabled());
    EXPECT_FALSE(svc::ChaosPlan::parse("off").enabled());
    EXPECT_FALSE(svc::ChaosPlan{}.enabled());
}

TEST(SvcChaos, PresetIsEnabledButExcludesProcessKillers)
{
    const svc::ChaosPlan plan = svc::ChaosPlan::chaos();
    EXPECT_TRUE(plan.enabled());
    EXPECT_GT(plan.tornFrameRate, 0.0);
    EXPECT_GT(plan.heartbeatDropRate, 0.0);
    EXPECT_GT(plan.clientStallRate, 0.0);
    // SIGSTOP hangs and mid-merge aborts need dedicated harnesses
    // (aggressive timeouts / restart drivers) — never the standing
    // preset the whole suite runs under.
    EXPECT_DOUBLE_EQ(plan.sigstopRate, 0.0);
    EXPECT_DOUBLE_EQ(plan.abortMergeRate, 0.0);
    EXPECT_EQ(svc::ChaosPlan::parse("chaos").tornFrameRate,
              plan.tornFrameRate);
}

TEST(SvcChaos, KeyValueListParses)
{
    const svc::ChaosPlan plan = svc::ChaosPlan::parse(
        "torn=0.5,torn_delay_us=250,drop=0.1,delay=0.2,delay_ms=7,"
        "sigstop=0.01,stall=0.3,stall_ms=12,abort=0.02,seed=99");
    EXPECT_DOUBLE_EQ(plan.tornFrameRate, 0.5);
    EXPECT_EQ(plan.tornDelayUs, 250);
    EXPECT_DOUBLE_EQ(plan.heartbeatDropRate, 0.1);
    EXPECT_DOUBLE_EQ(plan.heartbeatDelayRate, 0.2);
    EXPECT_EQ(plan.heartbeatDelayMs, 7);
    EXPECT_DOUBLE_EQ(plan.sigstopRate, 0.01);
    EXPECT_DOUBLE_EQ(plan.clientStallRate, 0.3);
    EXPECT_EQ(plan.clientStallMs, 12);
    EXPECT_DOUBLE_EQ(plan.abortMergeRate, 0.02);
    EXPECT_EQ(plan.seed, 99u);
    EXPECT_TRUE(plan.enabled());
}

TEST(SvcChaos, TearPointsLandStrictlyInsideTheFrame)
{
    svc::ChaosPlan plan;
    plan.tornFrameRate = 1.0;
    svc::setChaosPlan(plan);
    for (int i = 0; i < 200; ++i) {
        const auto cut = svc::chaosTearPoint(64);
        ASSERT_TRUE(cut.has_value());
        EXPECT_GE(*cut, 1u);
        EXPECT_LT(*cut, 64u);
    }
    svc::setChaosPlan(svc::ChaosPlan{}); // back to inert
    EXPECT_FALSE(svc::chaosTearPoint(64).has_value());
}

// ---------------------------------------------------------------------
// Shard scheduler.
// ---------------------------------------------------------------------

TEST(SvcShard, InitialShardsPartitionTheGrid)
{
    svc::ShardScheduler sched(10, 3);
    ASSERT_EQ(sched.shardCount(), 3u);
    std::size_t covered = 0;
    std::size_t expected_lo = 0;
    for (std::size_t i = 0; i < sched.shardCount(); ++i) {
        const auto &s = sched.shard(i);
        EXPECT_EQ(s.lo, expected_lo);
        EXPECT_GT(s.hi, s.lo);
        covered += s.hi - s.lo;
        expected_lo = s.hi;
    }
    EXPECT_EQ(covered, 10u);
    EXPECT_EQ(expected_lo, 10u);
}

TEST(SvcShard, StealSplitsTheFattestLiveShard)
{
    svc::ShardScheduler sched(16, 2); // [0,8) and [8,16)
    const auto a = sched.assign(0);
    const auto b = sched.assign(1);
    ASSERT_TRUE(a && b);
    EXPECT_FALSE(a->stolenFrom || b->stolenFrom);

    // Worker 0 finishes everything; worker 1 reported 2 trials.
    for (std::size_t i = a->lo; i < a->hi; ++i)
        sched.onTrial(a->shard, i);
    sched.onShardDone(a->shard);
    sched.onTrial(b->shard, 8);
    sched.onTrial(b->shard, 9);

    // Re-assigning worker 0 must steal the upper half of worker 1's
    // remainder [10,16) — split at 13.
    const auto stolen = sched.assign(0);
    ASSERT_TRUE(stolen.has_value());
    ASSERT_TRUE(stolen->stolenFrom.has_value());
    EXPECT_EQ(*stolen->stolenFrom, b->shard);
    EXPECT_EQ(stolen->lo, 13u);
    EXPECT_EQ(stolen->hi, 16u);
    EXPECT_EQ(sched.shard(b->shard).hi, 13u); // victim shrunk
    EXPECT_EQ(sched.steals(), 1u);

    // Duplicate reports (the shrink raced a trial) are deduped.
    EXPECT_TRUE(sched.onTrial(b->shard, 13));
    EXPECT_FALSE(sched.onTrial(stolen->shard, 13));
    EXPECT_EQ(sched.completed(), 11u);
}

TEST(SvcShard, WorkerDeathReturnsLiveShardsResumably)
{
    svc::ShardScheduler sched(8, 2); // [0,4), [4,8)
    const auto a = sched.assign(0);
    const auto b = sched.assign(1);
    ASSERT_TRUE(a && b);
    sched.onTrial(a->shard, 0);
    sched.onTrial(a->shard, 1);

    EXPECT_EQ(sched.onWorkerDead(0), 1u);
    // The survivor (or a respawn) inherits from the low-water mark:
    // trials 0 and 1 are not re-dispatched.
    const auto resumed = sched.assign(1);
    // Worker 1 still owns shard b; a *pending* shard exists, so no
    // steal is needed.
    ASSERT_TRUE(resumed.has_value());
    EXPECT_FALSE(resumed->stolenFrom.has_value());
    EXPECT_EQ(resumed->shard, a->shard);
    EXPECT_EQ(resumed->lo, 2u);
    EXPECT_EQ(resumed->hi, 4u);
}

TEST(SvcShard, SeedDoneSkipsRestoredTrialsAtAssignment)
{
    svc::ShardScheduler sched(6, 1);
    sched.seedDone(0);
    sched.seedDone(1);
    EXPECT_EQ(sched.completed(), 2u);
    const auto a = sched.assign(0);
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(a->lo, 2u);

    for (std::size_t i = 2; i < 6; ++i)
        sched.onTrial(a->shard, i);
    EXPECT_TRUE(sched.allDone());
}

TEST(SvcShard, FullyRestoredCampaignAssignsNothing)
{
    svc::ShardScheduler sched(4, 2);
    for (std::size_t i = 0; i < 4; ++i)
        sched.seedDone(i);
    EXPECT_TRUE(sched.allDone());
    EXPECT_FALSE(sched.assign(0).has_value());
}

// ---------------------------------------------------------------------
// Seed namespaces + requests + registry.
// ---------------------------------------------------------------------

TEST(SvcRegistry, EmptyNamespaceIsTheIdentity)
{
    // The contract that makes un-namespaced service runs bit-compare
    // against every existing in-process bench and test.
    EXPECT_EQ(svc::namespaceSeedRoot("", 42), 42u);
    EXPECT_EQ(svc::namespaceSeedRoot("", 0xdeadbeef), 0xdeadbeefull);
}

TEST(SvcRegistry, NamespacesDecorrelateButReproduce)
{
    const std::uint64_t alice = svc::namespaceSeedRoot("alice", 42);
    const std::uint64_t bob = svc::namespaceSeedRoot("bob", 42);
    EXPECT_NE(alice, bob);
    EXPECT_NE(alice, 42u);
    EXPECT_EQ(alice, svc::namespaceSeedRoot("alice", 42));
    // Distinct masters stay distinct inside one namespace.
    EXPECT_NE(alice, svc::namespaceSeedRoot("alice", 43));
}

TEST(SvcRegistry, RequestRoundTripsThroughJson)
{
    svc::CampaignRequest request;
    request.recipe = "selftest";
    request.name = "my-run";
    request.ns = "tenant-a";
    request.trials = 17;
    request.masterSeed = 0x1234;
    request.cycleBudget = 1000;
    request.maxRetries = 2;
    request.params = json::Value::object().set("work", 512);

    const auto parsed =
        svc::CampaignRequest::fromJson(request.toJson());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->recipe, request.recipe);
    EXPECT_EQ(parsed->name, request.name);
    EXPECT_EQ(parsed->ns, request.ns);
    EXPECT_EQ(parsed->trials, request.trials);
    EXPECT_EQ(parsed->masterSeed, request.masterSeed);
    EXPECT_EQ(parsed->cycleBudget, request.cycleBudget);
    EXPECT_EQ(parsed->maxRetries, request.maxRetries);
    EXPECT_EQ(parsed->identityKey(), request.identityKey());
}

TEST(SvcRegistry, MalformedRequestsAreRejected)
{
    EXPECT_FALSE(
        svc::CampaignRequest::fromJson(json::Value::object())
            .has_value());
    EXPECT_FALSE(
        svc::CampaignRequest::fromJson(json::Value("not an object"))
            .has_value());
}

TEST(SvcRegistry, BuildAppliesOverridesAndNamespace)
{
    EXPECT_TRUE(svc::CampaignRegistry::global().has("selftest"));
    EXPECT_TRUE(svc::CampaignRegistry::global().has(
        "fig11_aes_replay"));

    svc::CampaignRequest request;
    request.recipe = "selftest";
    request.ns = "tenant-a";
    request.trials = 5;
    request.masterSeed = 99;
    const exp::CampaignSpec spec = svc::buildSpec(request);
    EXPECT_EQ(spec.trials, 5u);
    EXPECT_EQ(spec.masterSeed,
              svc::namespaceSeedRoot("tenant-a", 99));
    EXPECT_EQ(spec.structureKey, "selftest");
    EXPECT_TRUE(spec.perTrialMetrics); // checkpoint compatibility
    ASSERT_TRUE(static_cast<bool>(spec.body));
}

TEST(SvcRegistry, UnknownRecipeThrows)
{
    svc::CampaignRequest request;
    request.recipe = "no-such-recipe";
    EXPECT_THROW(svc::buildSpec(request), SimFatal);
}

// ---------------------------------------------------------------------
// End-to-end: daemon + worker processes vs in-process runner.
// ---------------------------------------------------------------------

/** Short unique socket paths (sun_path is ~107 bytes). */
std::string
uniquePath(const char *tag)
{
    static int counter = 0;
    return "/tmp/uscope_" + std::string(tag) + "_" +
           std::to_string(::getpid()) + "_" +
           std::to_string(counter++);
}

/** A daemon on its own thread, shut down via the client protocol. */
struct DaemonFixture
{
    svc::DaemonConfig config;
    std::thread thread;

    explicit DaemonFixture(svc::DaemonConfig cfg)
        : config(std::move(cfg))
    {
        thread = std::thread([this] {
            svc::Daemon daemon(config);
            daemon.run();
        });
    }

    ~DaemonFixture()
    {
        svc::Client client(config.socketPath);
        if (client.connected())
            client.shutdownDaemon();
        thread.join();
        if (!config.stateDir.empty()) {
            std::error_code ec;
            std::filesystem::remove_all(config.stateDir, ec);
        }
    }
};

svc::CampaignRequest
selftestRequest(std::size_t trials, std::uint64_t seed,
                const std::string &ns = "")
{
    svc::CampaignRequest request;
    request.recipe = "selftest";
    request.trials = trials;
    request.masterSeed = seed;
    request.ns = ns;
    return request;
}

std::string
inProcessFingerprint(const svc::CampaignRequest &request,
                     unsigned workers = 1)
{
    exp::CampaignSpec spec = svc::buildSpec(request);
    spec.workers = workers;
    return exp::fnv1aHex(
        exp::deterministicFingerprint(exp::runCampaign(spec)));
}

/** Sum the per-worker {"run","restored"} credit map. */
std::pair<std::uint64_t, std::uint64_t>
creditTotals(const json::Value &credits)
{
    std::uint64_t run = 0;
    std::uint64_t restored = 0;
    for (const auto &[worker, credit] : credits.entries()) {
        const json::Value *r = credit.get("run");
        const json::Value *s = credit.get("restored");
        run += r ? r->asU64() : 0;
        restored += s ? s->asU64() : 0;
    }
    return {run, restored};
}

TEST(SvcService, FingerprintMatchesInProcessRun)
{
    svc::DaemonConfig config;
    config.socketPath = uniquePath("e2e");
    config.workers = 2;
    DaemonFixture daemon(std::move(config));

    svc::Client client(daemon.config.socketPath);
    ASSERT_TRUE(client.connected());
    ASSERT_TRUE(client.ping());

    const svc::CampaignRequest request = selftestRequest(24, 7);
    std::size_t updates_seen = 0;
    const svc::SubmitResult result =
        client.submit(request, /*stream_every=*/8,
                      [&](const json::Value &update) {
                          ++updates_seen;
                          // Partial aggregates stream in montonically.
                          const json::Value *completed =
                              update.get("completed");
                          ASSERT_NE(completed, nullptr);
                          EXPECT_LE(completed->asU64(), 24u);
                      });
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.totalTrials, 24u);
    EXPECT_GE(updates_seen, 1u);
    EXPECT_EQ(result.updates, updates_seen);

    // The whole point: dispatching over processes and sockets — with
    // whatever stealing happened to occur — changes nothing.
    EXPECT_EQ(result.fingerprint, inProcessFingerprint(request));
    // And the in-process reference is itself worker-count-invariant.
    EXPECT_EQ(result.fingerprint, inProcessFingerprint(request, 4));

    // Every trial is credited to exactly one worker, none restored.
    const auto [run, restored] = creditTotals(result.credits);
    EXPECT_EQ(run, 24u);
    EXPECT_EQ(restored, 0u);
}

TEST(SvcService, WorkerKilledMidShardResumesBitIdentically)
{
    // Worker 0's first incarnation SIGKILLs itself after 3 trials —
    // mid-shard, checkpoint files on disk, no goodbye.  The daemon
    // must detect the death, return the shard, respawn, and the
    // inheriting worker must restore the dead worker's completed
    // trials from the checkpoint and run the rest — with a final
    // fingerprint byte-identical to an uninterrupted in-process run.
    svc::DaemonConfig config;
    config.socketPath = uniquePath("kill");
    config.workers = 2;
    config.stateDir = uniquePath("killstate");
    config.worker0DieAfter = 3;
    DaemonFixture daemon(std::move(config));

    svc::Client client(daemon.config.socketPath);
    ASSERT_TRUE(client.connected());

    const svc::CampaignRequest request = selftestRequest(32, 9);
    const svc::SubmitResult result = client.submit(request);
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_GE(result.workerDeaths, 1u);
    EXPECT_EQ(result.fingerprint, inProcessFingerprint(request));

    // Credits survive the kill: the dead worker's checkpointed
    // trials are either restored by the inheritor or re-run, but
    // every trial is credited exactly once.
    {
        const auto [run, restored] = creditTotals(result.credits);
        EXPECT_EQ(run + restored, 32u);
    }

    // Durability: the finished campaign's trials are all persisted,
    // so resubmitting the identical request is a pure restore — and
    // still the same bytes.
    const svc::SubmitResult again = client.submit(request);
    ASSERT_TRUE(again.ok) << again.error;
    EXPECT_EQ(again.resumedTrials, 32u);
    EXPECT_EQ(again.workerDeaths, 0u);
    EXPECT_EQ(again.fingerprint, result.fingerprint);

    // A pure daemon-side restore dispatches nothing to workers, so
    // no worker earns a credit: run + restored + resumedTrials still
    // covers every trial exactly once.
    {
        const auto [run, restored] = creditTotals(again.credits);
        EXPECT_EQ(run + restored + again.resumedTrials, 32u);
        EXPECT_EQ(run, 0u);
    }
}

TEST(SvcService, TwoTenantsSameSeedAreDisjointAndReproducible)
{
    svc::DaemonConfig config;
    config.socketPath = uniquePath("tenant");
    config.workers = 2;
    DaemonFixture daemon(std::move(config));

    // Same request, same master seed, different namespaces,
    // submitted concurrently on two connections.
    const svc::CampaignRequest alice =
        selftestRequest(16, 42, "alice");
    const svc::CampaignRequest bob = selftestRequest(16, 42, "bob");

    svc::SubmitResult alice_result, bob_result;
    std::thread alice_thread([&] {
        svc::Client client(daemon.config.socketPath);
        ASSERT_TRUE(client.connected());
        alice_result = client.submit(alice);
    });
    std::thread bob_thread([&] {
        svc::Client client(daemon.config.socketPath);
        ASSERT_TRUE(client.connected());
        bob_result = client.submit(bob);
    });
    alice_thread.join();
    bob_thread.join();

    ASSERT_TRUE(alice_result.ok) << alice_result.error;
    ASSERT_TRUE(bob_result.ok) << bob_result.error;

    // Disjoint: the namespace decorrelates the trial streams.
    EXPECT_NE(alice_result.fingerprint, bob_result.fingerprint);

    // Individually reproducible: each equals its own in-process twin
    // (same registry, same namespace derivation), and a resubmission
    // under contention-free conditions returns the same bytes.
    EXPECT_EQ(alice_result.fingerprint, inProcessFingerprint(alice));
    EXPECT_EQ(bob_result.fingerprint, inProcessFingerprint(bob));

    svc::Client client(daemon.config.socketPath);
    ASSERT_TRUE(client.connected());
    const svc::SubmitResult alice_again = client.submit(alice);
    ASSERT_TRUE(alice_again.ok) << alice_again.error;
    EXPECT_EQ(alice_again.fingerprint, alice_result.fingerprint);
}

TEST(SvcService, SimulatorRecipeMatchesInProcessRun)
{
    // One full-simulator recipe through the service: Fig.-10-shaped
    // port contention, small enough for test time.
    svc::DaemonConfig config;
    config.socketPath = uniquePath("fig10");
    config.workers = 2;
    DaemonFixture daemon(std::move(config));

    svc::Client client(daemon.config.socketPath);
    ASSERT_TRUE(client.connected());

    svc::CampaignRequest request;
    request.recipe = "fig10_port_contention";
    request.trials = 4;
    request.masterSeed = 42;
    request.params = json::Value::object()
                         .set("samples", 60)
                         .set("replays", 4);

    const svc::SubmitResult result = client.submit(request);
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.fingerprint, inProcessFingerprint(request));
}

// ---------------------------------------------------------------------
// Observability: stats frames, structured errors, trace spills.
// ---------------------------------------------------------------------

TEST(SvcService, StatsExposeLiveAndLifetimeDaemonState)
{
    svc::DaemonConfig config;
    config.socketPath = uniquePath("stats");
    config.workers = 2;
    DaemonFixture daemon(std::move(config));

    // Baseline: a quiet daemon still answers with its worker table.
    {
        svc::Client client(daemon.config.socketPath);
        ASSERT_TRUE(client.connected());
        const auto stats = client.stats();
        ASSERT_TRUE(stats.has_value());
        ASSERT_NE(stats->get("workers"), nullptr);
        EXPECT_EQ(stats->get("workers")->asU64(), 2u);
        ASSERT_NE(stats->get("uptime_seconds"), nullptr);
        EXPECT_GE(stats->get("uptime_seconds")->asDouble(-1.0), 0.0);
        ASSERT_NE(stats->get("campaigns"), nullptr);
        EXPECT_TRUE(stats->get("campaigns")->items().empty());
        const json::Value *table = stats->get("worker_table");
        ASSERT_NE(table, nullptr);
        ASSERT_EQ(table->items().size(), 2u);
        for (const json::Value &worker : table->items()) {
            EXPECT_GT(worker.get("pid")->asU64(), 0u);
            EXPECT_GE(
                worker.get("heartbeat_age_seconds")->asDouble(-1.0),
                0.0);
        }
    }

    // A campaign slow enough to be observed mid-flight from a second
    // connection.
    svc::CampaignRequest request = selftestRequest(48, 5);
    request.params = json::Value::object().set("work", 1000000);

    std::atomic<bool> done{false};
    svc::SubmitResult result;
    std::thread submitter([&] {
        svc::Client client(daemon.config.socketPath);
        EXPECT_TRUE(client.connected());
        result = client.submit(request);
        done.store(true);
    });

    bool caught_live = false;
    while (!done.load() && !caught_live) {
        svc::Client client(daemon.config.socketPath);
        if (!client.connected())
            continue;
        const auto stats = client.stats();
        if (!stats.has_value())
            continue;
        const json::Value *campaigns = stats->get("campaigns");
        if (!campaigns || campaigns->items().empty())
            continue;

        const json::Value &campaign = campaigns->items().front();
        EXPECT_EQ(campaign.get("recipe")->asString(), "selftest");
        EXPECT_EQ(campaign.get("total")->asU64(), 48u);
        EXPECT_LE(campaign.get("completed")->asU64(), 48u);
        EXPECT_GE(campaign.get("age_seconds")->asDouble(-1.0), 0.0);
        const json::Value *shards = campaign.get("shards");
        ASSERT_NE(shards, nullptr);
        ASSERT_FALSE(shards->items().empty());
        const json::Value &shard = shards->items().front();
        EXPECT_NE(shard.get("lo"), nullptr);
        EXPECT_NE(shard.get("hi"), nullptr);
        EXPECT_NE(shard.get("owner"), nullptr);
        caught_live = true;
    }
    submitter.join();
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_TRUE(caught_live)
        << "campaign finished before stats could observe it";

    // Lifetime counters survive the campaign's completion.
    svc::Client client(daemon.config.socketPath);
    ASSERT_TRUE(client.connected());
    const auto stats = client.stats();
    ASSERT_TRUE(stats.has_value());
    const json::Value *metrics = stats->get("metrics");
    ASSERT_NE(metrics, nullptr);
    const json::Value *completed =
        metrics->get("svc.daemon.campaigns_completed");
    ASSERT_NE(completed, nullptr);
    EXPECT_GE(completed->asU64(), 1u);
    const json::Value *trials =
        metrics->get("svc.daemon.trials_completed");
    ASSERT_NE(trials, nullptr);
    EXPECT_GE(trials->asU64(), 48u);
    const json::Value *requests =
        metrics->get("svc.daemon.stats_requests");
    ASSERT_NE(requests, nullptr);
    EXPECT_GE(requests->asU64(), 2u);
    // The daemon profiles its own phases unconditionally.
    const json::Value *prof = stats->get("prof");
    ASSERT_NE(prof, nullptr);
    EXPECT_NE(prof->get("prof.svc.dispatch"), nullptr);
}

namespace
{

/** Read one length-prefixed frame off a raw socket (5s timeout). */
std::optional<std::string>
recvFrame(int fd)
{
    svc::FrameSplitter splitter;
    char buf[4096];
    for (int spins = 0; spins < 5000; ++spins) {
        if (auto frame = splitter.next())
            return frame;
        const ssize_t n = ::recv(fd, buf, sizeof(buf), MSG_DONTWAIT);
        if (n > 0) {
            splitter.feed(buf, static_cast<std::size_t>(n));
        } else if (n == 0) {
            return std::nullopt;
        } else {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(1));
        }
    }
    return std::nullopt;
}

} // namespace

TEST(SvcService, MalformedFrameGetsStructuredErrorReply)
{
    svc::DaemonConfig config;
    config.socketPath = uniquePath("badframe");
    config.workers = 1;
    DaemonFixture daemon(std::move(config));

    // Wait for the socket to exist via the normal client, then talk
    // raw bytes on a second connection.
    {
        svc::Client probe(daemon.config.socketPath);
        ASSERT_TRUE(probe.connected());
        ASSERT_TRUE(probe.ping());
    }
    const int fd = svc::connectUnix(daemon.config.socketPath);
    ASSERT_GE(fd, 0);

    const std::string bad = svc::encodeFrame("this is not json");
    ASSERT_EQ(::send(fd, bad.data(), bad.size(), 0),
              static_cast<ssize_t>(bad.size()));

    const std::optional<std::string> reply = recvFrame(fd);
    ASSERT_TRUE(reply.has_value()) << "no error reply";
    const std::optional<json::Value> parsed =
        json::Value::parse(*reply);
    ASSERT_TRUE(parsed.has_value());
    ASSERT_NE(parsed->get("type"), nullptr);
    EXPECT_EQ(parsed->get("type")->asString(), "error");
    ASSERT_NE(parsed->get("message"), nullptr);
    EXPECT_NE(parsed->get("message")->asString().find("malformed"),
              std::string::npos);

    // The session survives the bad frame: a valid ping still pongs.
    const std::string ping = svc::encodeFrame("{\"type\":\"ping\"}");
    ASSERT_EQ(::send(fd, ping.data(), ping.size(), 0),
              static_cast<ssize_t>(ping.size()));
    const std::optional<std::string> pong = recvFrame(fd);
    ASSERT_TRUE(pong.has_value());
    EXPECT_NE(pong->find("pong"), std::string::npos);
    ::close(fd);

    // And the daemon tallied it.
    svc::Client client(daemon.config.socketPath);
    ASSERT_TRUE(client.connected());
    const auto stats = client.stats();
    ASSERT_TRUE(stats.has_value());
    const json::Value *metrics = stats->get("metrics");
    ASSERT_NE(metrics, nullptr);
    const json::Value *badFrames =
        metrics->get("svc.daemon.bad_frames");
    ASSERT_NE(badFrames, nullptr);
    EXPECT_GE(badFrames->asU64(), 1u);
}

TEST(SvcService, ObsLevelsDoNotPerturbServiceFingerprints)
{
    // No state dir: the second submission re-executes rather than
    // restoring, so the comparison is between two real runs.
    svc::DaemonConfig config;
    config.socketPath = uniquePath("obsinv");
    config.workers = 2;
    DaemonFixture daemon(std::move(config));

    svc::Client client(daemon.config.socketPath);
    ASSERT_TRUE(client.connected());

    svc::CampaignRequest request = selftestRequest(24, 13);
    request.obs = obs::ObsLevel::Off;
    const svc::SubmitResult dark = client.submit(request);
    ASSERT_TRUE(dark.ok) << dark.error;

    request.obs = obs::ObsLevel::Full;
    const svc::SubmitResult lit = client.submit(request);
    ASSERT_TRUE(lit.ok) << lit.error;

    EXPECT_EQ(dark.fingerprint, lit.fingerprint);
    EXPECT_EQ(dark.fingerprint, inProcessFingerprint(request));
}

TEST(SvcService, TraceSpillsLandInStateDirAndMergeAcrossWorkers)
{
    svc::DaemonConfig config;
    config.socketPath = uniquePath("spill");
    config.workers = 2;
    config.stateDir = uniquePath("spillstate");
    DaemonFixture daemon(std::move(config));

    svc::Client client(daemon.config.socketPath);
    ASSERT_TRUE(client.connected());

    // A real-simulator recipe, so the spills carry actual events.
    svc::CampaignRequest request;
    request.recipe = "fig10_port_contention";
    request.trials = 4;
    request.masterSeed = 21;
    request.obs = obs::ObsLevel::Full;
    request.params = json::Value::object()
                         .set("samples", 40)
                         .set("replays", 2);

    const svc::SubmitResult result = client.submit(request);
    ASSERT_TRUE(result.ok) << result.error;

    // Workers spill per-trial traces under <campaign state>/traces.
    std::string spill_dir;
    for (const auto &entry :
         std::filesystem::recursive_directory_iterator(
             daemon.config.stateDir)) {
        if (entry.is_directory() &&
            entry.path().filename() == "traces")
            spill_dir = entry.path().string();
    }
    ASSERT_FALSE(spill_dir.empty())
        << "no traces/ dir under " << daemon.config.stateDir;

    const std::vector<obs::TraceSpill> spills =
        obs::loadTraceSpills(spill_dir);
    ASSERT_GE(spills.size(), 4u);
    for (const obs::TraceSpill &spill : spills)
        EXPECT_FALSE(spill.log.empty())
            << "empty spill from worker " << spill.worker;

    // The svc_client trace path: merge into one multi-lane document.
    const std::string merged = obs::mergeChromeTraces(spills);
    EXPECT_NE(merged.find("traceEvents"), std::string::npos);
    EXPECT_NE(merged.find("worker "), std::string::npos);
    const std::optional<json::Value> doc = json::Value::parse(merged);
    ASSERT_TRUE(doc.has_value());
    EXPECT_FALSE(doc->get("traceEvents")->items().empty());
}

// ---------------------------------------------------------------------
// Lifecycle + failure handling (DESIGN.md §16).
// ---------------------------------------------------------------------

/** A selftest request slow enough to be interrupted mid-flight. */
svc::CampaignRequest
slowRequest(std::size_t trials, std::uint64_t seed,
            std::uint64_t work = 5000000)
{
    svc::CampaignRequest request = selftestRequest(trials, seed);
    request.params = json::Value::object().set("work", work);
    return request;
}

std::uint64_t
metricU64(const svc::DaemonConfig &config, const char *key)
{
    svc::Client client(config.socketPath);
    if (!client.connected())
        return 0;
    const auto stats = client.stats();
    if (!stats.has_value())
        return 0;
    const json::Value *metrics = stats->get("metrics");
    const json::Value *v = metrics ? metrics->get(key) : nullptr;
    return v ? v->asU64() : 0;
}

TEST(SvcLifecycle, CancelReturnsPartialAndResumeFinishesIdentically)
{
    svc::DaemonConfig config;
    config.socketPath = uniquePath("cancel");
    config.workers = 2;
    config.stateDir = uniquePath("cancelstate");
    DaemonFixture daemon(std::move(config));

    const svc::CampaignRequest request = slowRequest(64, 11);

    // Submit on one connection; cancel by request identity from a
    // second once at least one trial has streamed in (so the resume
    // below provably restores something).
    std::atomic<bool> saw_update{false};
    svc::SubmitResult result;
    std::thread submitter([&] {
        svc::Client client(daemon.config.socketPath);
        ASSERT_TRUE(client.connected());
        result = client.submit(request, /*stream_every=*/1,
                               [&](const json::Value &) {
                                   saw_update.store(true);
                               });
    });
    while (!saw_update.load())
        std::this_thread::sleep_for(std::chrono::milliseconds(1));

    svc::Client canceller(daemon.config.socketPath);
    ASSERT_TRUE(canceller.connected());
    const svc::SubmitResult cancel_ack = canceller.cancel(request);
    ASSERT_TRUE(cancel_ack.cancelled) << cancel_ack.error;
    EXPECT_FALSE(cancel_ack.partialJson.empty());

    // The owner's submit() resolves to cancelled with the same
    // partial aggregate — not a hang, not a bare error.
    submitter.join();
    EXPECT_TRUE(result.cancelled);
    EXPECT_FALSE(result.ok);
    EXPECT_FALSE(result.partialJson.empty());
    const auto partial = json::Value::parse(result.partialJson);
    ASSERT_TRUE(partial.has_value());
    ASSERT_NE(partial->get("ok"), nullptr);
    EXPECT_GE(partial->get("ok")->asU64(), 1u);
    EXPECT_LT(partial->get("ok")->asU64(), 64u);

    // The checkpoint survived the cancel: resubmitting resumes the
    // already-completed trials and the final fingerprint is still
    // byte-identical to a never-cancelled run.
    svc::Client client(daemon.config.socketPath);
    ASSERT_TRUE(client.connected());
    const svc::SubmitResult resumed = client.submit(request);
    ASSERT_TRUE(resumed.ok) << resumed.error;
    EXPECT_GE(resumed.resumedTrials, 1u);
    EXPECT_EQ(resumed.fingerprint, inProcessFingerprint(request));

    EXPECT_GE(metricU64(daemon.config,
                        "svc.daemon.campaigns_cancelled"),
              1u);
}

TEST(SvcLifecycle, CancelUnknownCampaignSaysNotFound)
{
    svc::DaemonConfig config;
    config.socketPath = uniquePath("cnone");
    config.workers = 1;
    DaemonFixture daemon(std::move(config));

    svc::Client client(daemon.config.socketPath);
    ASSERT_TRUE(client.connected());
    const svc::SubmitResult ack = client.cancel(std::uint64_t{9999});
    EXPECT_FALSE(ack.cancelled);
    EXPECT_TRUE(ack.notFound) << ack.error;
}

TEST(SvcLifecycle, AttachAfterDisconnectMatchesUninterruptedRun)
{
    svc::DaemonConfig config;
    config.socketPath = uniquePath("attach");
    config.workers = 2;
    config.stateDir = uniquePath("attachstate");
    DaemonFixture daemon(std::move(config));
    {
        svc::Client probe(daemon.config.socketPath);
        ASSERT_TRUE(probe.connected());
        ASSERT_TRUE(probe.ping());
    }

    // Submit over a raw socket, read the accepted frame, then drop
    // the connection — the crash-mid-submit shape.  The campaign must
    // keep running ownerless.
    const svc::CampaignRequest request = slowRequest(32, 23);
    const int fd = svc::connectUnix(daemon.config.socketPath);
    ASSERT_GE(fd, 0);
    const std::string submit = svc::encodeFrame(
        json::Value::object()
            .set("type", "submit")
            .set("request", request.toJson())
            .dump(-1));
    ASSERT_EQ(::send(fd, submit.data(), submit.size(), 0),
              static_cast<ssize_t>(submit.size()));
    const std::optional<std::string> accepted = recvFrame(fd);
    ASSERT_TRUE(accepted.has_value());
    EXPECT_NE(accepted->find("accepted"), std::string::npos);
    ::close(fd);

    // Reconnect and attach by request identity.  Falling back to
    // submit() covers the race where the campaign finished (or was
    // never accepted) before the attach landed — durable state makes
    // that path a resume with the same bytes.
    svc::Client client(daemon.config.socketPath);
    ASSERT_TRUE(client.connected());
    svc::SubmitResult result = client.attach(request);
    if (result.notFound)
        result = client.submit(request);
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.fingerprint, inProcessFingerprint(request));
}

TEST(SvcLifecycle, DeadlineExpiryCancelsWithPartialAggregate)
{
    svc::DaemonConfig config;
    config.socketPath = uniquePath("deadline");
    config.workers = 2;
    config.stateDir = uniquePath("deadlinestate");
    DaemonFixture daemon(std::move(config));

    // Minutes of work against a sub-second deadline.
    svc::CampaignRequest request = slowRequest(256, 31, 10000000);
    request.deadlineSeconds = 0.3;

    svc::Client client(daemon.config.socketPath);
    ASSERT_TRUE(client.connected());
    const svc::SubmitResult result = client.submit(request);
    EXPECT_FALSE(result.ok);
    ASSERT_TRUE(result.cancelled) << result.error;
    EXPECT_NE(result.error.find("deadline"), std::string::npos)
        << result.error;
    EXPECT_FALSE(result.partialJson.empty());

    EXPECT_GE(
        metricU64(daemon.config, "svc.daemon.deadline_expired"), 1u);
}

TEST(SvcLifecycle, SurvivesEveryWorkerDeadQueuesAndSheds)
{
    // Workers that die instantly at exec: the daemon must stay up,
    // answer pings and stats, queue the first campaign, shed the
    // second with {"type":"busy"}, back the respawns off, and still
    // honor a cancel — graceful degradation, not an error cascade.
    svc::DaemonConfig config;
    config.socketPath = uniquePath("deadpool");
    config.workers = 2;
    config.workerExe = "/bin/false";
    config.tun.queueLimit = 1;
    config.tun.backoffInitialSec = 0.01;
    config.tun.backoffMaxSec = 0.1;
    DaemonFixture daemon(std::move(config));

    svc::Client probe(daemon.config.socketPath);
    ASSERT_TRUE(probe.connected());
    ASSERT_TRUE(probe.ping());

    const svc::CampaignRequest queued = selftestRequest(8, 3);
    std::atomic<bool> accepted{false};
    svc::SubmitResult queued_result;
    std::thread submitter([&] {
        svc::Client client(daemon.config.socketPath);
        ASSERT_TRUE(client.connected());
        accepted.store(true);
        queued_result = client.submit(queued);
    });
    while (!accepted.load())
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    // Let the daemon register the campaign before probing the limit.
    while (metricU64(daemon.config,
                     "svc.daemon.campaigns_accepted") < 1)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));

    // Queue limit 1 is now spent: the next submission is shed.
    svc::Client second(daemon.config.socketPath);
    ASSERT_TRUE(second.connected());
    const svc::SubmitResult shed =
        second.submit(selftestRequest(8, 4));
    EXPECT_TRUE(shed.busy) << shed.error;
    EXPECT_FALSE(shed.ok);
    EXPECT_GE(metricU64(daemon.config, "svc.daemon.shed"), 1u);

    // The respawn churn is visible as accumulated backoff.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    EXPECT_GE(metricU64(daemon.config, "svc.daemon.worker_deaths"),
              1u);

    // Cancel unwedges the queued submitter cleanly.
    const svc::SubmitResult ack = second.cancel(queued);
    EXPECT_TRUE(ack.cancelled) << ack.error;
    submitter.join();
    EXPECT_TRUE(queued_result.cancelled);
}

TEST(SvcLifecycle, StuckTrialEscalatesWarnKillTimedOut)
{
    // Trial 2 hangs for a nominal minute.  With an aggressive ladder
    // (warn at 50 ms, SIGKILL at 250 ms, two kills => TimedOut) the
    // daemon must clear it in test time: kill the worker twice, record
    // trial 2 as TimedOut, and let the respawned worker finish the
    // rest — a *measurement* of the hang, not a service failure.
    svc::DaemonConfig config;
    config.socketPath = uniquePath("stuck");
    config.workers = 1;
    config.tun.heartbeatMs = 20;
    config.tun.heartbeatTimeoutSec = 0.25;
    config.tun.trialWarnSec = 0.05;
    config.tun.trialKillLimit = 2;
    config.tun.backoffInitialSec = 0.01;
    config.tun.backoffMaxSec = 0.05;
    DaemonFixture daemon(std::move(config));

    svc::CampaignRequest request = selftestRequest(5, 17);
    request.params = json::Value::object()
                         .set("hang_index", 2)
                         .set("hang_ms", 60000);

    svc::Client client(daemon.config.socketPath);
    ASSERT_TRUE(client.connected());
    const svc::SubmitResult result = client.submit(request);
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.totalTrials, 5u);
    EXPECT_GE(result.workerDeaths, 2u);

    const auto parsed = json::Value::parse(result.resultJson);
    ASSERT_TRUE(parsed.has_value());
    const json::Value *aggregate = parsed->get("aggregate");
    ASSERT_NE(aggregate, nullptr);
    ASSERT_NE(aggregate->get("timed_out"), nullptr);
    EXPECT_EQ(aggregate->get("timed_out")->asU64(), 1u);
    EXPECT_EQ(aggregate->get("ok")->asU64(), 4u);

    EXPECT_GE(metricU64(daemon.config, "svc.daemon.trial_warns"),
              1u);
    EXPECT_GE(metricU64(daemon.config, "svc.daemon.trial_timeouts"),
              1u);
}

TEST(SvcLifecycle, DrainPersistsManifestAndRestartAutoResumes)
{
    const std::string state_dir = uniquePath("drainstate");
    const std::string socket_a = uniquePath("drain_a");
    const svc::CampaignRequest request = slowRequest(48, 29, 2000000);

    // Daemon A: drained mid-campaign via the client protocol (the
    // SIGTERM handler funnels into the same beginDrain path).  Not a
    // DaemonFixture — drain *is* its shutdown, and the state dir must
    // outlive it.
    std::thread daemon_a([&] {
        svc::DaemonConfig config;
        config.socketPath = socket_a;
        config.workers = 2;
        config.stateDir = state_dir;
        config.tun.drainGraceSec = 10;
        svc::Daemon daemon(std::move(config));
        daemon.run();
    });

    std::atomic<bool> saw_update{false};
    svc::SubmitResult interrupted;
    std::thread submitter([&] {
        svc::Client client(socket_a);
        ASSERT_TRUE(client.connected());
        interrupted = client.submit(request, /*stream_every=*/1,
                                    [&](const json::Value &) {
                                        saw_update.store(true);
                                    });
    });
    while (!saw_update.load())
        std::this_thread::sleep_for(std::chrono::milliseconds(1));

    {
        svc::Client ops(socket_a);
        ASSERT_TRUE(ops.connected());
        ASSERT_TRUE(ops.drainDaemon());
    }
    daemon_a.join();
    submitter.join();
    // The drain stopped the campaign short of a result; the owner
    // got an informational frame + EOF, never a fake success.
    EXPECT_FALSE(interrupted.ok);
    ::unlink(socket_a.c_str());

    // Daemon B on the same state dir auto-resumes the pending
    // manifest with no client attached; attach-by-identity picks the
    // resumed campaign back up (submit fallback covers it having
    // already finished) and the bytes match an uninterrupted run.
    svc::DaemonConfig config_b;
    config_b.socketPath = uniquePath("drain_b");
    config_b.workers = 2;
    config_b.stateDir = state_dir;
    DaemonFixture daemon_b(std::move(config_b));

    svc::Client client(daemon_b.config.socketPath);
    ASSERT_TRUE(client.connected());
    svc::SubmitResult result = client.attach(request);
    if (result.notFound)
        result = client.submit(request);
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.fingerprint, inProcessFingerprint(request));
    // Work done before the drain was not thrown away.
    const auto [run, restored] = creditTotals(result.credits);
    EXPECT_GE(restored + result.resumedTrials, 1u)
        << "drain checkpointed nothing";
    EXPECT_EQ(run + restored + result.resumedTrials, 48u);
}

TEST(SvcLifecycle, ChaosPresetLeavesFingerprintsByteIdentical)
{
    // The whole point of the chaos harness: torn frames, dropped and
    // delayed heartbeats, stalling clients — and the fingerprint
    // still bit-compares against a calm in-process run.  setenv
    // covers the re-exec'd workers; setChaosPlan covers the
    // in-process daemon + client.
    ::setenv("USCOPE_SVC_CHAOS", "chaos", 1);
    svc::setChaosPlan(svc::ChaosPlan::chaos());
    struct Restore
    {
        ~Restore()
        {
            svc::setChaosPlan(svc::ChaosPlan{});
            ::unsetenv("USCOPE_SVC_CHAOS");
        }
    } restore;

    svc::DaemonConfig config;
    config.socketPath = uniquePath("chaos");
    config.workers = 2;
    config.stateDir = uniquePath("chaosstate");
    DaemonFixture daemon(std::move(config));

    svc::Client client(daemon.config.socketPath);
    ASSERT_TRUE(client.connected());
    const svc::CampaignRequest request = selftestRequest(32, 37);
    std::size_t updates = 0;
    const svc::SubmitResult result =
        client.submit(request, /*stream_every=*/4,
                      [&](const json::Value &) { ++updates; });
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_GE(updates, 1u);
    EXPECT_EQ(result.fingerprint, inProcessFingerprint(request));
}

} // namespace

int
main(int argc, char **argv)
{
    // The daemon re-execs /proc/self/exe as its worker pool — which,
    // when a daemon runs inside this test process, is this binary.
    // The marker check must therefore come before gtest sees argv.
    int worker_exit = 0;
    if (uscope::svc::maybeRunWorkerMain(argc, argv, &worker_exit))
        return worker_exit;
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
