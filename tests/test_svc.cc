/**
 * @file
 * Campaign service suite (DESIGN.md §13).
 *
 * Three layers:
 *
 *  - Pure units: frame splitting under pathological fragmentation,
 *    the shard scheduler's steal/death state machine, seed-namespace
 *    derivation, request round-trips, registry construction.
 *  - End-to-end determinism: a real daemon (in a thread) with real
 *    worker *processes* (fork + exec of this very test binary — see
 *    main() below) must produce fingerprints byte-identical to
 *    in-process CampaignRunner runs of the same request.
 *  - The hard cases the service exists for: a worker SIGKILLed
 *    mid-shard (steal + checkpoint-resume must keep the fingerprint
 *    byte-identical), and two tenants submitting the same request
 *    under different namespaces concurrently (disjoint, individually
 *    reproducible results).
 *  - Observability (DESIGN.md §14): the stats request/reply frames,
 *    per-worker trial credits summing to campaign totals across any
 *    steal/kill history, structured error replies to malformed
 *    frames, obs-level fingerprint invariance through the service,
 *    and per-trial trace spills merging into one per-worker-lane
 *    Chrome trace.
 *
 * The e2e tests use the machine-less "selftest" recipe: microseconds
 * per trial, so kill/steal/respawn round-trips run in test time.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include "common/logging.hh"
#include "exp/campaign.hh"
#include "obs/chrome_trace.hh"
#include "obs/prof.hh"
#include "svc/client.hh"
#include "svc/daemon.hh"
#include "svc/registry.hh"
#include "svc/shard.hh"
#include "svc/wire.hh"
#include "svc/worker.hh"

using namespace uscope;

namespace
{

// ---------------------------------------------------------------------
// Wire framing.
// ---------------------------------------------------------------------

TEST(SvcWire, FrameRoundTripsThroughSplitter)
{
    const std::string payload = "{\"type\":\"ping\"}";
    const std::string frame = svc::encodeFrame(payload);
    ASSERT_EQ(frame.size(), payload.size() + 4);

    svc::FrameSplitter splitter;
    splitter.feed(frame.data(), frame.size());
    const auto got = splitter.next();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, payload);
    EXPECT_FALSE(splitter.next().has_value());
}

TEST(SvcWire, SplitterHandlesPathologicalFragmentation)
{
    // Three frames — including an empty payload — delivered one byte
    // at a time must pop intact and in order.
    const std::vector<std::string> payloads = {
        "first", "", std::string(1000, 'x')};
    std::string stream;
    for (const std::string &p : payloads)
        stream += svc::encodeFrame(p);

    svc::FrameSplitter splitter;
    std::vector<std::string> got;
    for (char c : stream) {
        splitter.feed(&c, 1);
        while (auto frame = splitter.next())
            got.push_back(*frame);
    }
    EXPECT_EQ(got, payloads);
    EXPECT_FALSE(splitter.corrupt());
}

TEST(SvcWire, OversizedFrameMarksStreamCorrupt)
{
    svc::FrameSplitter splitter;
    const char huge[4] = {'\x7f', '\x00', '\x00', '\x00'};
    splitter.feed(huge, 4);
    EXPECT_TRUE(splitter.corrupt());
    EXPECT_FALSE(splitter.next().has_value());
}

// ---------------------------------------------------------------------
// Shard scheduler.
// ---------------------------------------------------------------------

TEST(SvcShard, InitialShardsPartitionTheGrid)
{
    svc::ShardScheduler sched(10, 3);
    ASSERT_EQ(sched.shardCount(), 3u);
    std::size_t covered = 0;
    std::size_t expected_lo = 0;
    for (std::size_t i = 0; i < sched.shardCount(); ++i) {
        const auto &s = sched.shard(i);
        EXPECT_EQ(s.lo, expected_lo);
        EXPECT_GT(s.hi, s.lo);
        covered += s.hi - s.lo;
        expected_lo = s.hi;
    }
    EXPECT_EQ(covered, 10u);
    EXPECT_EQ(expected_lo, 10u);
}

TEST(SvcShard, StealSplitsTheFattestLiveShard)
{
    svc::ShardScheduler sched(16, 2); // [0,8) and [8,16)
    const auto a = sched.assign(0);
    const auto b = sched.assign(1);
    ASSERT_TRUE(a && b);
    EXPECT_FALSE(a->stolenFrom || b->stolenFrom);

    // Worker 0 finishes everything; worker 1 reported 2 trials.
    for (std::size_t i = a->lo; i < a->hi; ++i)
        sched.onTrial(a->shard, i);
    sched.onShardDone(a->shard);
    sched.onTrial(b->shard, 8);
    sched.onTrial(b->shard, 9);

    // Re-assigning worker 0 must steal the upper half of worker 1's
    // remainder [10,16) — split at 13.
    const auto stolen = sched.assign(0);
    ASSERT_TRUE(stolen.has_value());
    ASSERT_TRUE(stolen->stolenFrom.has_value());
    EXPECT_EQ(*stolen->stolenFrom, b->shard);
    EXPECT_EQ(stolen->lo, 13u);
    EXPECT_EQ(stolen->hi, 16u);
    EXPECT_EQ(sched.shard(b->shard).hi, 13u); // victim shrunk
    EXPECT_EQ(sched.steals(), 1u);

    // Duplicate reports (the shrink raced a trial) are deduped.
    EXPECT_TRUE(sched.onTrial(b->shard, 13));
    EXPECT_FALSE(sched.onTrial(stolen->shard, 13));
    EXPECT_EQ(sched.completed(), 11u);
}

TEST(SvcShard, WorkerDeathReturnsLiveShardsResumably)
{
    svc::ShardScheduler sched(8, 2); // [0,4), [4,8)
    const auto a = sched.assign(0);
    const auto b = sched.assign(1);
    ASSERT_TRUE(a && b);
    sched.onTrial(a->shard, 0);
    sched.onTrial(a->shard, 1);

    EXPECT_EQ(sched.onWorkerDead(0), 1u);
    // The survivor (or a respawn) inherits from the low-water mark:
    // trials 0 and 1 are not re-dispatched.
    const auto resumed = sched.assign(1);
    // Worker 1 still owns shard b; a *pending* shard exists, so no
    // steal is needed.
    ASSERT_TRUE(resumed.has_value());
    EXPECT_FALSE(resumed->stolenFrom.has_value());
    EXPECT_EQ(resumed->shard, a->shard);
    EXPECT_EQ(resumed->lo, 2u);
    EXPECT_EQ(resumed->hi, 4u);
}

TEST(SvcShard, SeedDoneSkipsRestoredTrialsAtAssignment)
{
    svc::ShardScheduler sched(6, 1);
    sched.seedDone(0);
    sched.seedDone(1);
    EXPECT_EQ(sched.completed(), 2u);
    const auto a = sched.assign(0);
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(a->lo, 2u);

    for (std::size_t i = 2; i < 6; ++i)
        sched.onTrial(a->shard, i);
    EXPECT_TRUE(sched.allDone());
}

TEST(SvcShard, FullyRestoredCampaignAssignsNothing)
{
    svc::ShardScheduler sched(4, 2);
    for (std::size_t i = 0; i < 4; ++i)
        sched.seedDone(i);
    EXPECT_TRUE(sched.allDone());
    EXPECT_FALSE(sched.assign(0).has_value());
}

// ---------------------------------------------------------------------
// Seed namespaces + requests + registry.
// ---------------------------------------------------------------------

TEST(SvcRegistry, EmptyNamespaceIsTheIdentity)
{
    // The contract that makes un-namespaced service runs bit-compare
    // against every existing in-process bench and test.
    EXPECT_EQ(svc::namespaceSeedRoot("", 42), 42u);
    EXPECT_EQ(svc::namespaceSeedRoot("", 0xdeadbeef), 0xdeadbeefull);
}

TEST(SvcRegistry, NamespacesDecorrelateButReproduce)
{
    const std::uint64_t alice = svc::namespaceSeedRoot("alice", 42);
    const std::uint64_t bob = svc::namespaceSeedRoot("bob", 42);
    EXPECT_NE(alice, bob);
    EXPECT_NE(alice, 42u);
    EXPECT_EQ(alice, svc::namespaceSeedRoot("alice", 42));
    // Distinct masters stay distinct inside one namespace.
    EXPECT_NE(alice, svc::namespaceSeedRoot("alice", 43));
}

TEST(SvcRegistry, RequestRoundTripsThroughJson)
{
    svc::CampaignRequest request;
    request.recipe = "selftest";
    request.name = "my-run";
    request.ns = "tenant-a";
    request.trials = 17;
    request.masterSeed = 0x1234;
    request.cycleBudget = 1000;
    request.maxRetries = 2;
    request.params = json::Value::object().set("work", 512);

    const auto parsed =
        svc::CampaignRequest::fromJson(request.toJson());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->recipe, request.recipe);
    EXPECT_EQ(parsed->name, request.name);
    EXPECT_EQ(parsed->ns, request.ns);
    EXPECT_EQ(parsed->trials, request.trials);
    EXPECT_EQ(parsed->masterSeed, request.masterSeed);
    EXPECT_EQ(parsed->cycleBudget, request.cycleBudget);
    EXPECT_EQ(parsed->maxRetries, request.maxRetries);
    EXPECT_EQ(parsed->identityKey(), request.identityKey());
}

TEST(SvcRegistry, MalformedRequestsAreRejected)
{
    EXPECT_FALSE(
        svc::CampaignRequest::fromJson(json::Value::object())
            .has_value());
    EXPECT_FALSE(
        svc::CampaignRequest::fromJson(json::Value("not an object"))
            .has_value());
}

TEST(SvcRegistry, BuildAppliesOverridesAndNamespace)
{
    EXPECT_TRUE(svc::CampaignRegistry::global().has("selftest"));
    EXPECT_TRUE(svc::CampaignRegistry::global().has(
        "fig11_aes_replay"));

    svc::CampaignRequest request;
    request.recipe = "selftest";
    request.ns = "tenant-a";
    request.trials = 5;
    request.masterSeed = 99;
    const exp::CampaignSpec spec = svc::buildSpec(request);
    EXPECT_EQ(spec.trials, 5u);
    EXPECT_EQ(spec.masterSeed,
              svc::namespaceSeedRoot("tenant-a", 99));
    EXPECT_EQ(spec.structureKey, "selftest");
    EXPECT_TRUE(spec.perTrialMetrics); // checkpoint compatibility
    ASSERT_TRUE(static_cast<bool>(spec.body));
}

TEST(SvcRegistry, UnknownRecipeThrows)
{
    svc::CampaignRequest request;
    request.recipe = "no-such-recipe";
    EXPECT_THROW(svc::buildSpec(request), SimFatal);
}

// ---------------------------------------------------------------------
// End-to-end: daemon + worker processes vs in-process runner.
// ---------------------------------------------------------------------

/** Short unique socket paths (sun_path is ~107 bytes). */
std::string
uniquePath(const char *tag)
{
    static int counter = 0;
    return "/tmp/uscope_" + std::string(tag) + "_" +
           std::to_string(::getpid()) + "_" +
           std::to_string(counter++);
}

/** A daemon on its own thread, shut down via the client protocol. */
struct DaemonFixture
{
    svc::DaemonConfig config;
    std::thread thread;

    explicit DaemonFixture(svc::DaemonConfig cfg)
        : config(std::move(cfg))
    {
        thread = std::thread([this] {
            svc::Daemon daemon(config);
            daemon.run();
        });
    }

    ~DaemonFixture()
    {
        svc::Client client(config.socketPath);
        if (client.connected())
            client.shutdownDaemon();
        thread.join();
        if (!config.stateDir.empty()) {
            std::error_code ec;
            std::filesystem::remove_all(config.stateDir, ec);
        }
    }
};

svc::CampaignRequest
selftestRequest(std::size_t trials, std::uint64_t seed,
                const std::string &ns = "")
{
    svc::CampaignRequest request;
    request.recipe = "selftest";
    request.trials = trials;
    request.masterSeed = seed;
    request.ns = ns;
    return request;
}

std::string
inProcessFingerprint(const svc::CampaignRequest &request,
                     unsigned workers = 1)
{
    exp::CampaignSpec spec = svc::buildSpec(request);
    spec.workers = workers;
    return exp::fnv1aHex(
        exp::deterministicFingerprint(exp::runCampaign(spec)));
}

/** Sum the per-worker {"run","restored"} credit map. */
std::pair<std::uint64_t, std::uint64_t>
creditTotals(const json::Value &credits)
{
    std::uint64_t run = 0;
    std::uint64_t restored = 0;
    for (const auto &[worker, credit] : credits.entries()) {
        const json::Value *r = credit.get("run");
        const json::Value *s = credit.get("restored");
        run += r ? r->asU64() : 0;
        restored += s ? s->asU64() : 0;
    }
    return {run, restored};
}

TEST(SvcService, FingerprintMatchesInProcessRun)
{
    svc::DaemonConfig config;
    config.socketPath = uniquePath("e2e");
    config.workers = 2;
    DaemonFixture daemon(std::move(config));

    svc::Client client(daemon.config.socketPath);
    ASSERT_TRUE(client.connected());
    ASSERT_TRUE(client.ping());

    const svc::CampaignRequest request = selftestRequest(24, 7);
    std::size_t updates_seen = 0;
    const svc::SubmitResult result =
        client.submit(request, /*stream_every=*/8,
                      [&](const json::Value &update) {
                          ++updates_seen;
                          // Partial aggregates stream in montonically.
                          const json::Value *completed =
                              update.get("completed");
                          ASSERT_NE(completed, nullptr);
                          EXPECT_LE(completed->asU64(), 24u);
                      });
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.totalTrials, 24u);
    EXPECT_GE(updates_seen, 1u);
    EXPECT_EQ(result.updates, updates_seen);

    // The whole point: dispatching over processes and sockets — with
    // whatever stealing happened to occur — changes nothing.
    EXPECT_EQ(result.fingerprint, inProcessFingerprint(request));
    // And the in-process reference is itself worker-count-invariant.
    EXPECT_EQ(result.fingerprint, inProcessFingerprint(request, 4));

    // Every trial is credited to exactly one worker, none restored.
    const auto [run, restored] = creditTotals(result.credits);
    EXPECT_EQ(run, 24u);
    EXPECT_EQ(restored, 0u);
}

TEST(SvcService, WorkerKilledMidShardResumesBitIdentically)
{
    // Worker 0's first incarnation SIGKILLs itself after 3 trials —
    // mid-shard, checkpoint files on disk, no goodbye.  The daemon
    // must detect the death, return the shard, respawn, and the
    // inheriting worker must restore the dead worker's completed
    // trials from the checkpoint and run the rest — with a final
    // fingerprint byte-identical to an uninterrupted in-process run.
    svc::DaemonConfig config;
    config.socketPath = uniquePath("kill");
    config.workers = 2;
    config.stateDir = uniquePath("killstate");
    config.worker0DieAfter = 3;
    DaemonFixture daemon(std::move(config));

    svc::Client client(daemon.config.socketPath);
    ASSERT_TRUE(client.connected());

    const svc::CampaignRequest request = selftestRequest(32, 9);
    const svc::SubmitResult result = client.submit(request);
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_GE(result.workerDeaths, 1u);
    EXPECT_EQ(result.fingerprint, inProcessFingerprint(request));

    // Credits survive the kill: the dead worker's checkpointed
    // trials are either restored by the inheritor or re-run, but
    // every trial is credited exactly once.
    {
        const auto [run, restored] = creditTotals(result.credits);
        EXPECT_EQ(run + restored, 32u);
    }

    // Durability: the finished campaign's trials are all persisted,
    // so resubmitting the identical request is a pure restore — and
    // still the same bytes.
    const svc::SubmitResult again = client.submit(request);
    ASSERT_TRUE(again.ok) << again.error;
    EXPECT_EQ(again.resumedTrials, 32u);
    EXPECT_EQ(again.workerDeaths, 0u);
    EXPECT_EQ(again.fingerprint, result.fingerprint);

    // A pure daemon-side restore dispatches nothing to workers, so
    // no worker earns a credit: run + restored + resumedTrials still
    // covers every trial exactly once.
    {
        const auto [run, restored] = creditTotals(again.credits);
        EXPECT_EQ(run + restored + again.resumedTrials, 32u);
        EXPECT_EQ(run, 0u);
    }
}

TEST(SvcService, TwoTenantsSameSeedAreDisjointAndReproducible)
{
    svc::DaemonConfig config;
    config.socketPath = uniquePath("tenant");
    config.workers = 2;
    DaemonFixture daemon(std::move(config));

    // Same request, same master seed, different namespaces,
    // submitted concurrently on two connections.
    const svc::CampaignRequest alice =
        selftestRequest(16, 42, "alice");
    const svc::CampaignRequest bob = selftestRequest(16, 42, "bob");

    svc::SubmitResult alice_result, bob_result;
    std::thread alice_thread([&] {
        svc::Client client(daemon.config.socketPath);
        ASSERT_TRUE(client.connected());
        alice_result = client.submit(alice);
    });
    std::thread bob_thread([&] {
        svc::Client client(daemon.config.socketPath);
        ASSERT_TRUE(client.connected());
        bob_result = client.submit(bob);
    });
    alice_thread.join();
    bob_thread.join();

    ASSERT_TRUE(alice_result.ok) << alice_result.error;
    ASSERT_TRUE(bob_result.ok) << bob_result.error;

    // Disjoint: the namespace decorrelates the trial streams.
    EXPECT_NE(alice_result.fingerprint, bob_result.fingerprint);

    // Individually reproducible: each equals its own in-process twin
    // (same registry, same namespace derivation), and a resubmission
    // under contention-free conditions returns the same bytes.
    EXPECT_EQ(alice_result.fingerprint, inProcessFingerprint(alice));
    EXPECT_EQ(bob_result.fingerprint, inProcessFingerprint(bob));

    svc::Client client(daemon.config.socketPath);
    ASSERT_TRUE(client.connected());
    const svc::SubmitResult alice_again = client.submit(alice);
    ASSERT_TRUE(alice_again.ok) << alice_again.error;
    EXPECT_EQ(alice_again.fingerprint, alice_result.fingerprint);
}

TEST(SvcService, SimulatorRecipeMatchesInProcessRun)
{
    // One full-simulator recipe through the service: Fig.-10-shaped
    // port contention, small enough for test time.
    svc::DaemonConfig config;
    config.socketPath = uniquePath("fig10");
    config.workers = 2;
    DaemonFixture daemon(std::move(config));

    svc::Client client(daemon.config.socketPath);
    ASSERT_TRUE(client.connected());

    svc::CampaignRequest request;
    request.recipe = "fig10_port_contention";
    request.trials = 4;
    request.masterSeed = 42;
    request.params = json::Value::object()
                         .set("samples", 60)
                         .set("replays", 4);

    const svc::SubmitResult result = client.submit(request);
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.fingerprint, inProcessFingerprint(request));
}

// ---------------------------------------------------------------------
// Observability: stats frames, structured errors, trace spills.
// ---------------------------------------------------------------------

TEST(SvcService, StatsExposeLiveAndLifetimeDaemonState)
{
    svc::DaemonConfig config;
    config.socketPath = uniquePath("stats");
    config.workers = 2;
    DaemonFixture daemon(std::move(config));

    // Baseline: a quiet daemon still answers with its worker table.
    {
        svc::Client client(daemon.config.socketPath);
        ASSERT_TRUE(client.connected());
        const auto stats = client.stats();
        ASSERT_TRUE(stats.has_value());
        ASSERT_NE(stats->get("workers"), nullptr);
        EXPECT_EQ(stats->get("workers")->asU64(), 2u);
        ASSERT_NE(stats->get("uptime_seconds"), nullptr);
        EXPECT_GE(stats->get("uptime_seconds")->asDouble(-1.0), 0.0);
        ASSERT_NE(stats->get("campaigns"), nullptr);
        EXPECT_TRUE(stats->get("campaigns")->items().empty());
        const json::Value *table = stats->get("worker_table");
        ASSERT_NE(table, nullptr);
        ASSERT_EQ(table->items().size(), 2u);
        for (const json::Value &worker : table->items()) {
            EXPECT_GT(worker.get("pid")->asU64(), 0u);
            EXPECT_GE(
                worker.get("heartbeat_age_seconds")->asDouble(-1.0),
                0.0);
        }
    }

    // A campaign slow enough to be observed mid-flight from a second
    // connection.
    svc::CampaignRequest request = selftestRequest(48, 5);
    request.params = json::Value::object().set("work", 1000000);

    std::atomic<bool> done{false};
    svc::SubmitResult result;
    std::thread submitter([&] {
        svc::Client client(daemon.config.socketPath);
        EXPECT_TRUE(client.connected());
        result = client.submit(request);
        done.store(true);
    });

    bool caught_live = false;
    while (!done.load() && !caught_live) {
        svc::Client client(daemon.config.socketPath);
        if (!client.connected())
            continue;
        const auto stats = client.stats();
        if (!stats.has_value())
            continue;
        const json::Value *campaigns = stats->get("campaigns");
        if (!campaigns || campaigns->items().empty())
            continue;

        const json::Value &campaign = campaigns->items().front();
        EXPECT_EQ(campaign.get("recipe")->asString(), "selftest");
        EXPECT_EQ(campaign.get("total")->asU64(), 48u);
        EXPECT_LE(campaign.get("completed")->asU64(), 48u);
        EXPECT_GE(campaign.get("age_seconds")->asDouble(-1.0), 0.0);
        const json::Value *shards = campaign.get("shards");
        ASSERT_NE(shards, nullptr);
        ASSERT_FALSE(shards->items().empty());
        const json::Value &shard = shards->items().front();
        EXPECT_NE(shard.get("lo"), nullptr);
        EXPECT_NE(shard.get("hi"), nullptr);
        EXPECT_NE(shard.get("owner"), nullptr);
        caught_live = true;
    }
    submitter.join();
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_TRUE(caught_live)
        << "campaign finished before stats could observe it";

    // Lifetime counters survive the campaign's completion.
    svc::Client client(daemon.config.socketPath);
    ASSERT_TRUE(client.connected());
    const auto stats = client.stats();
    ASSERT_TRUE(stats.has_value());
    const json::Value *metrics = stats->get("metrics");
    ASSERT_NE(metrics, nullptr);
    const json::Value *completed =
        metrics->get("svc.daemon.campaigns_completed");
    ASSERT_NE(completed, nullptr);
    EXPECT_GE(completed->asU64(), 1u);
    const json::Value *trials =
        metrics->get("svc.daemon.trials_completed");
    ASSERT_NE(trials, nullptr);
    EXPECT_GE(trials->asU64(), 48u);
    const json::Value *requests =
        metrics->get("svc.daemon.stats_requests");
    ASSERT_NE(requests, nullptr);
    EXPECT_GE(requests->asU64(), 2u);
    // The daemon profiles its own phases unconditionally.
    const json::Value *prof = stats->get("prof");
    ASSERT_NE(prof, nullptr);
    EXPECT_NE(prof->get("prof.svc.dispatch"), nullptr);
}

namespace
{

/** Read one length-prefixed frame off a raw socket (5s timeout). */
std::optional<std::string>
recvFrame(int fd)
{
    svc::FrameSplitter splitter;
    char buf[4096];
    for (int spins = 0; spins < 5000; ++spins) {
        if (auto frame = splitter.next())
            return frame;
        const ssize_t n = ::recv(fd, buf, sizeof(buf), MSG_DONTWAIT);
        if (n > 0) {
            splitter.feed(buf, static_cast<std::size_t>(n));
        } else if (n == 0) {
            return std::nullopt;
        } else {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(1));
        }
    }
    return std::nullopt;
}

} // namespace

TEST(SvcService, MalformedFrameGetsStructuredErrorReply)
{
    svc::DaemonConfig config;
    config.socketPath = uniquePath("badframe");
    config.workers = 1;
    DaemonFixture daemon(std::move(config));

    // Wait for the socket to exist via the normal client, then talk
    // raw bytes on a second connection.
    {
        svc::Client probe(daemon.config.socketPath);
        ASSERT_TRUE(probe.connected());
        ASSERT_TRUE(probe.ping());
    }
    const int fd = svc::connectUnix(daemon.config.socketPath);
    ASSERT_GE(fd, 0);

    const std::string bad = svc::encodeFrame("this is not json");
    ASSERT_EQ(::send(fd, bad.data(), bad.size(), 0),
              static_cast<ssize_t>(bad.size()));

    const std::optional<std::string> reply = recvFrame(fd);
    ASSERT_TRUE(reply.has_value()) << "no error reply";
    const std::optional<json::Value> parsed =
        json::Value::parse(*reply);
    ASSERT_TRUE(parsed.has_value());
    ASSERT_NE(parsed->get("type"), nullptr);
    EXPECT_EQ(parsed->get("type")->asString(), "error");
    ASSERT_NE(parsed->get("message"), nullptr);
    EXPECT_NE(parsed->get("message")->asString().find("malformed"),
              std::string::npos);

    // The session survives the bad frame: a valid ping still pongs.
    const std::string ping = svc::encodeFrame("{\"type\":\"ping\"}");
    ASSERT_EQ(::send(fd, ping.data(), ping.size(), 0),
              static_cast<ssize_t>(ping.size()));
    const std::optional<std::string> pong = recvFrame(fd);
    ASSERT_TRUE(pong.has_value());
    EXPECT_NE(pong->find("pong"), std::string::npos);
    ::close(fd);

    // And the daemon tallied it.
    svc::Client client(daemon.config.socketPath);
    ASSERT_TRUE(client.connected());
    const auto stats = client.stats();
    ASSERT_TRUE(stats.has_value());
    const json::Value *metrics = stats->get("metrics");
    ASSERT_NE(metrics, nullptr);
    const json::Value *badFrames =
        metrics->get("svc.daemon.bad_frames");
    ASSERT_NE(badFrames, nullptr);
    EXPECT_GE(badFrames->asU64(), 1u);
}

TEST(SvcService, ObsLevelsDoNotPerturbServiceFingerprints)
{
    // No state dir: the second submission re-executes rather than
    // restoring, so the comparison is between two real runs.
    svc::DaemonConfig config;
    config.socketPath = uniquePath("obsinv");
    config.workers = 2;
    DaemonFixture daemon(std::move(config));

    svc::Client client(daemon.config.socketPath);
    ASSERT_TRUE(client.connected());

    svc::CampaignRequest request = selftestRequest(24, 13);
    request.obs = obs::ObsLevel::Off;
    const svc::SubmitResult dark = client.submit(request);
    ASSERT_TRUE(dark.ok) << dark.error;

    request.obs = obs::ObsLevel::Full;
    const svc::SubmitResult lit = client.submit(request);
    ASSERT_TRUE(lit.ok) << lit.error;

    EXPECT_EQ(dark.fingerprint, lit.fingerprint);
    EXPECT_EQ(dark.fingerprint, inProcessFingerprint(request));
}

TEST(SvcService, TraceSpillsLandInStateDirAndMergeAcrossWorkers)
{
    svc::DaemonConfig config;
    config.socketPath = uniquePath("spill");
    config.workers = 2;
    config.stateDir = uniquePath("spillstate");
    DaemonFixture daemon(std::move(config));

    svc::Client client(daemon.config.socketPath);
    ASSERT_TRUE(client.connected());

    // A real-simulator recipe, so the spills carry actual events.
    svc::CampaignRequest request;
    request.recipe = "fig10_port_contention";
    request.trials = 4;
    request.masterSeed = 21;
    request.obs = obs::ObsLevel::Full;
    request.params = json::Value::object()
                         .set("samples", 40)
                         .set("replays", 2);

    const svc::SubmitResult result = client.submit(request);
    ASSERT_TRUE(result.ok) << result.error;

    // Workers spill per-trial traces under <campaign state>/traces.
    std::string spill_dir;
    for (const auto &entry :
         std::filesystem::recursive_directory_iterator(
             daemon.config.stateDir)) {
        if (entry.is_directory() &&
            entry.path().filename() == "traces")
            spill_dir = entry.path().string();
    }
    ASSERT_FALSE(spill_dir.empty())
        << "no traces/ dir under " << daemon.config.stateDir;

    const std::vector<obs::TraceSpill> spills =
        obs::loadTraceSpills(spill_dir);
    ASSERT_GE(spills.size(), 4u);
    for (const obs::TraceSpill &spill : spills)
        EXPECT_FALSE(spill.log.empty())
            << "empty spill from worker " << spill.worker;

    // The svc_client trace path: merge into one multi-lane document.
    const std::string merged = obs::mergeChromeTraces(spills);
    EXPECT_NE(merged.find("traceEvents"), std::string::npos);
    EXPECT_NE(merged.find("worker "), std::string::npos);
    const std::optional<json::Value> doc = json::Value::parse(merged);
    ASSERT_TRUE(doc.has_value());
    EXPECT_FALSE(doc->get("traceEvents")->items().empty());
}

} // namespace

int
main(int argc, char **argv)
{
    // The daemon re-execs /proc/self/exe as its worker pool — which,
    // when a daemon runs inside this test process, is this binary.
    // The marker check must therefore come before gtest sees argv.
    int worker_exit = 0;
    if (uscope::svc::maybeRunWorkerMain(argc, argv, &worker_exit))
        return worker_exit;
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
