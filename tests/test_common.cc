/**
 * @file
 * Unit tests for src/common: bit utilities, the deterministic RNG,
 * statistics containers, and the logging/error machinery.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>

#include "common/bitfield.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "common/stats.hh"
#include "common/types.hh"

using namespace uscope;

TEST(Bitfield, MaskAndBits)
{
    EXPECT_EQ(mask(0), 0u);
    EXPECT_EQ(mask(1), 1u);
    EXPECT_EQ(mask(12), 0xFFFu);
    EXPECT_EQ(mask(64), ~std::uint64_t{0});

    // The PGD index of a canonical address: bits 47:39.
    const std::uint64_t va = 0x0000'7FFF'FFFF'F000ull;
    EXPECT_EQ(bits(va, 47, 39), 0xFFu);
    EXPECT_EQ(bits(0xABCD'1234ull, 15, 8), 0x12u);
}

TEST(Bitfield, InsertBits)
{
    EXPECT_EQ(insertBits(0, 7, 4, 0xA), 0xA0u);
    EXPECT_EQ(insertBits(0xFFFF, 7, 4, 0), 0xFF0Fu);
    EXPECT_EQ(insertBits(0xFF, 3, 0, 0x5), 0xF5u);
}

TEST(Bitfield, PowersAndRounding)
{
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(4096));
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_FALSE(isPowerOf2(48));
    EXPECT_EQ(log2i(1), 0u);
    EXPECT_EQ(log2i(4096), 12u);
    EXPECT_EQ(roundUp(1, 64), 64u);
    EXPECT_EQ(roundUp(64, 64), 64u);
    EXPECT_EQ(roundDown(127, 64), 64u);
}

TEST(Types, PageAndLineHelpers)
{
    EXPECT_EQ(pageBase(0x1234), 0x1000u);
    EXPECT_EQ(lineBase(0x1234), 0x1200u);
    EXPECT_EQ(pageNumber(0x3000), 3u);
    EXPECT_EQ(lineNumber(0x1240), 0x49u);
    EXPECT_EQ(pageSize, 4096u);
    EXPECT_EQ(lineSize, 64u);
}

TEST(Rng, Deterministic)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    unsigned same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3u);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.below(bound), bound);
    }
}

TEST(Rng, RangeInclusive)
{
    Rng rng(7);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 500; ++i)
        seen.insert(rng.range(3, 6));
    EXPECT_EQ(seen, (std::set<std::uint64_t>{3, 4, 5, 6}));
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double draw = rng.uniform();
        ASSERT_GE(draw, 0.0);
        ASSERT_LT(draw, 1.0);
        sum += draw;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(3);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Summary, MeanMinMaxVariance)
{
    Summary summary;
    for (double sample : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        summary.add(sample);
    EXPECT_EQ(summary.count(), 8u);
    EXPECT_DOUBLE_EQ(summary.mean(), 5.0);
    EXPECT_DOUBLE_EQ(summary.min(), 2.0);
    EXPECT_DOUBLE_EQ(summary.max(), 9.0);
    // Sample variance of the classic example set is 32/7.
    EXPECT_NEAR(summary.variance(), 32.0 / 7.0, 1e-12);
}

TEST(Summary, EmptyIsZero)
{
    Summary summary;
    EXPECT_EQ(summary.count(), 0u);
    EXPECT_EQ(summary.mean(), 0.0);
    EXPECT_EQ(summary.variance(), 0.0);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram hist(0, 100, 10);
    hist.add(-5);           // underflow
    hist.add(0);            // bucket 0
    hist.add(9.99);         // bucket 0
    hist.add(55);           // bucket 5
    hist.add(99.5);         // bucket 9
    hist.add(100);          // overflow
    hist.add(1000);         // overflow

    EXPECT_EQ(hist.count(), 7u);
    EXPECT_EQ(hist.underflow(), 1u);
    EXPECT_EQ(hist.overflow(), 2u);
    EXPECT_EQ(hist.buckets()[0], 2u);
    EXPECT_EQ(hist.buckets()[5], 1u);
    EXPECT_EQ(hist.buckets()[9], 1u);
}

TEST(Histogram, CountAboveAndPercentile)
{
    Histogram hist(0, 200, 20);
    for (int i = 1; i <= 100; ++i)
        hist.add(i);
    EXPECT_EQ(hist.countAbove(90), 10u);
    EXPECT_NEAR(hist.percentile(0.5), 50.5, 0.01);
    EXPECT_NEAR(hist.percentile(0.0), 1.0, 0.01);
    EXPECT_NEAR(hist.percentile(1.0), 100.0, 0.01);
}

TEST(Histogram, PercentileClampsOutOfRangeFractions)
{
    Histogram hist(0, 200, 20);
    for (int i = 1; i <= 100; ++i)
        hist.add(i);
    // A negative fraction used to make the size_t cast of a negative
    // position undefined behaviour; out-of-range inputs now clamp.
    EXPECT_EQ(hist.percentile(-0.5), 1.0);
    EXPECT_EQ(hist.percentile(-1e300), 1.0);
    EXPECT_EQ(hist.percentile(2.0), 100.0);
    EXPECT_EQ(hist.percentile(std::numeric_limits<double>::infinity()),
              100.0);
    // NaN fails every comparison and clamps to the minimum.
    EXPECT_EQ(hist.percentile(std::nan("")), 1.0);
    // In-range behaviour is unchanged.
    EXPECT_NEAR(hist.percentile(0.5), 50.5, 0.01);
}

TEST(Json, NonFiniteDoublesSerializeAsNullAndAreCounted)
{
    json::Value doc = json::Value::object()
                          .set("ok", 1.5)
                          .set("nan", std::nan(""))
                          .set("inf",
                               std::numeric_limits<double>::infinity());
    json::Value arr = json::Value::array();
    arr.push(-std::numeric_limits<double>::infinity());
    arr.push(2.0);
    doc.set("nested", std::move(arr));

    EXPECT_EQ(doc.nonFiniteCount(), 3u);
    const std::string out = doc.dump();
    EXPECT_EQ(out,
              "{\"ok\":1.5,\"nan\":null,\"inf\":null,"
              "\"nested\":[null,2]}");

    EXPECT_EQ(json::Value(0.25).nonFiniteCount(), 0u);
    EXPECT_EQ(json::Value("NaN").nonFiniteCount(), 0u);
}

TEST(Histogram, RenderContainsBars)
{
    Histogram hist(0, 10, 2);
    for (int i = 0; i < 8; ++i)
        hist.add(2);
    hist.add(7);
    const std::string out = hist.render(10);
    EXPECT_NE(out.find("##########"), std::string::npos);
    EXPECT_NE(out.find('|'), std::string::npos);
}

TEST(Histogram, InvalidRangeIsFatal)
{
    EXPECT_THROW(Histogram(10, 10, 4), SimFatal);
    EXPECT_THROW(Histogram(0, 10, 0), SimFatal);
}

TEST(Histogram, RawQueriesPanicWithoutRawSamples)
{
    // countAbove()/percentile() answer from the raw sample vector;
    // on a populated keep_raw=false histogram they would silently
    // return 0/garbage, so they panic instead.
    Histogram binned(0, 10, 5, /*keep_raw=*/false);
    EXPECT_FALSE(binned.keepRaw());
    // Empty is fine: there is nothing the answer could misrepresent.
    EXPECT_EQ(binned.countAbove(3.0), 0u);
    EXPECT_EQ(binned.percentile(0.5), 0.0);

    binned.add(4.0);
    EXPECT_THROW(binned.countAbove(3.0), SimPanic);
    EXPECT_THROW(binned.percentile(0.5), SimPanic);

    // keep_raw=true histograms still answer normally.
    Histogram raw(0, 10, 5);
    raw.add(4.0);
    raw.add(8.0);
    EXPECT_EQ(raw.countAbove(5.0), 1u);
    EXPECT_EQ(raw.percentile(1.0), 8.0);
}

TEST(Logging, PanicAndFatalThrow)
{
    EXPECT_THROW(panic("boom %d", 3), SimPanic);
    EXPECT_THROW(fatal("bad config %s", "x"), SimFatal);
}

TEST(Logging, FormatProducesText)
{
    EXPECT_EQ(format("a=%d b=%s", 5, "hi"), "a=5 b=hi");
    EXPECT_EQ(format("%llx", 0xDEADull), "dead");
}

TEST(Logging, TraceGating)
{
    Trace trace("unit-test-cat");
    EXPECT_FALSE(trace.enabled());
    Trace::enable("unit-test-cat");
    EXPECT_TRUE(trace.enabled());
    Trace::disable("unit-test-cat");
    EXPECT_FALSE(trace.enabled());
    Trace::enable("*");
    EXPECT_TRUE(trace.enabled());
    Trace::disableAll();
    EXPECT_FALSE(trace.enabled());
}
