/**
 * @file
 * Unit tests for src/fault: the deterministic fault & noise model.
 *
 * The contract under test (DESIGN.md §11): the same (plan, seed) pair
 * reproduces the same fault schedule and the same event-coupled noise
 * bit for bit; a default plan is completely inert; every injection is
 * visible both in FaultStats and in the fault.* metric namespace and
 * the FaultInject trace stream.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "attack/victims.hh"
#include "fault/injector.hh"
#include "fault/plan.hh"
#include "obs/metrics.hh"
#include "os/machine.hh"

using namespace uscope;

namespace
{

/** A plan with only the time-scheduled interrupt channel armed. */
fault::FaultPlan
interruptOnlyPlan(Cycles gap)
{
    fault::FaultPlan plan;
    plan.interruptMeanGap = gap;
    plan.interruptEvictions = 4;
    return plan;
}

/** Drive @p injector to its next @p count firings; return the cycles. */
std::vector<Cycles>
firingCycles(fault::FaultInjector &injector, unsigned count)
{
    std::vector<Cycles> fired;
    while (fired.size() < count) {
        const Cycles next = injector.nextEventCycle();
        EXPECT_NE(next, kNoEventCycle);
        injector.poll(next);
        fired.push_back(next);
    }
    return fired;
}

} // namespace

TEST(FaultPlanTest, DefaultPlanIsInert)
{
    const fault::FaultPlan plan;
    EXPECT_FALSE(plan.enabled());

    fault::FaultInjector injector(plan, 42);
    EXPECT_FALSE(injector.active());
    EXPECT_EQ(injector.nextEventCycle(), kNoEventCycle);

    injector.poll(1'000'000);
    EXPECT_EQ(injector.issueJitter(0), 0u);
    EXPECT_EQ(injector.probeJitter(), 0u);
    EXPECT_FALSE(injector.dropMonitorSample());
    EXPECT_EQ(injector.stats().injectionsTotal(), 0u);
}

TEST(FaultPlanTest, ChaosPlanIsActive)
{
    EXPECT_TRUE(fault::FaultPlan::chaos().enabled());
}

TEST(FaultPlanTest, EnvironmentDefaultMatchesEnvironment)
{
    // The suite runs both with and without USCOPE_FAULT_PLAN=chaos
    // (the CI chaos job); the cached default must match whichever
    // environment this process actually has.
    const char *env = std::getenv("USCOPE_FAULT_PLAN");
    const bool chaos = env && std::string(env) == "chaos";
    EXPECT_EQ(fault::FaultPlan::environmentDefault().enabled(), chaos);
    // Cached: a second read agrees with the first.
    EXPECT_EQ(fault::FaultPlan::environmentDefault().enabled(), chaos);
}

TEST(FaultInjectorTest, ScheduleIsSeedDeterministic)
{
    const fault::FaultPlan plan = interruptOnlyPlan(1000);
    fault::FaultInjector a(plan, 7);
    fault::FaultInjector b(plan, 7);

    const auto fired_a = firingCycles(a, 100);
    const auto fired_b = firingCycles(b, 100);
    EXPECT_EQ(fired_a, fired_b);
    EXPECT_EQ(a.stats().interrupts, 100u);

    // Gaps are uniform in [gap/2, 3*gap/2] from cycle 0.
    Cycles prev = 0;
    for (const Cycles at : fired_a) {
        const Cycles gap = at - prev;
        EXPECT_GE(gap, 500u);
        EXPECT_LE(gap, 1500u);
        prev = at;
    }
}

TEST(FaultInjectorTest, DifferentSeedsGiveDifferentSchedules)
{
    const fault::FaultPlan plan = interruptOnlyPlan(100'000);
    fault::FaultInjector a(plan, 1);
    fault::FaultInjector b(plan, 2);
    // With a 100k-wide uniform gap, seed-independent schedules would
    // collide on the very first firing with probability ~1e-5.
    EXPECT_NE(firingCycles(a, 4), firingCycles(b, 4));
}

TEST(FaultInjectorTest, PollCatchesUpWhenDrivenPastFirings)
{
    // A raw tick() user may jump the clock far beyond several pending
    // firings at once; poll must deliver all of them, not just one.
    const fault::FaultPlan plan = interruptOnlyPlan(1000);
    fault::FaultInjector injector(plan, 11);
    injector.poll(10'000);
    EXPECT_GE(injector.stats().interrupts, 5u);
    EXPECT_GT(injector.nextEventCycle(), 10'000u);
}

TEST(FaultInjectorTest, ReanchorRedrawsStalePendingFirings)
{
    // A pending firing cycle stranded behind a restored clock would be
    // delivered as one catch-up burst on the next poll (the scenario
    // Machine::copyStateFrom guards against).  reanchorAt re-draws the
    // stale firing relative to the new clock instead.
    const fault::FaultPlan plan = interruptOnlyPlan(1000);
    fault::FaultInjector stale(plan, 11);
    fault::FaultInjector reanchored(plan, 11);

    stale.poll(10'000);
    EXPECT_GE(stale.stats().interrupts, 5u) << "burst without reanchor";

    reanchored.reanchorAt(10'000);
    EXPECT_GE(reanchored.nextEventCycle(), 10'000u);
    reanchored.poll(10'000);
    EXPECT_LE(reanchored.stats().interrupts, 1u)
        << "reanchorAt must prevent the catch-up burst";
}

TEST(FaultInjectorTest, ReanchorIsNoOpForConsistentSchedules)
{
    // After a poll, every pending firing lies at or after the clock —
    // the invariant a consistent snapshot restore preserves — so re-
    // anchoring there must not change the schedule at all.
    const fault::FaultPlan plan = interruptOnlyPlan(1000);
    fault::FaultInjector a(plan, 23);
    fault::FaultInjector b(plan, 23);
    firingCycles(a, 10);
    const auto fired = firingCycles(b, 10);

    b.reanchorAt(fired.back());
    EXPECT_EQ(firingCycles(a, 20), firingCycles(b, 20));
}

TEST(FaultInjectorTest, EventCoupledNoiseIsSeedDeterministic)
{
    fault::FaultPlan plan;
    plan.portJitterRate = 0.3;
    plan.portJitterMax = 5;
    plan.probeJitterMax = 9;
    plan.sampleDropRate = 0.25;

    fault::FaultInjector a(plan, 99);
    fault::FaultInjector b(plan, 99);
    for (unsigned n = 0; n < 2000; ++n) {
        const Cycles port = a.issueJitter(n % 4);
        EXPECT_EQ(port, b.issueJitter(n % 4));
        EXPECT_LE(port, 5u);
        const Cycles probe = a.probeJitter();
        EXPECT_EQ(probe, b.probeJitter());
        EXPECT_LE(probe, 9u);
        EXPECT_EQ(a.dropMonitorSample(), b.dropMonitorSample());
    }
    EXPECT_EQ(a.stats().portJitterEvents, b.stats().portJitterEvents);

    // Rates are honored to within loose statistical bounds.
    EXPECT_GT(a.stats().samplesDropped, 350u);
    EXPECT_LT(a.stats().samplesDropped, 650u);
    EXPECT_GT(a.stats().portJitterEvents, 450u);
    EXPECT_LT(a.stats().portJitterEvents, 750u);
}

TEST(FaultMachineTest, InjectionsAreCountedInMetricsAndTrace)
{
    os::MachineConfig mcfg;
    mcfg.seed = 1234;
    mcfg.fault = interruptOnlyPlan(500);
    mcfg.obs.traceEvents = true;
    os::Machine machine(mcfg);

    auto &kernel = machine.kernel();
    const auto victim = attack::buildControlFlowVictim(kernel, true);
    kernel.startOnContext(victim.pid, 0, victim.program);
    ASSERT_TRUE(machine.runUntilHalted(0, 1'000'000));

    const fault::FaultStats &stats = machine.faults().stats();
    EXPECT_GT(stats.interrupts, 0u);

    const obs::MetricSnapshot snapshot = machine.metricsSnapshot();
    const obs::MetricValue *interrupts =
        snapshot.find("fault.interrupts");
    ASSERT_NE(interrupts, nullptr);
    EXPECT_EQ(interrupts->counter, stats.interrupts);
    const obs::MetricValue *evicted =
        snapshot.find("fault.interrupt.lines_evicted");
    ASSERT_NE(evicted, nullptr);
    EXPECT_EQ(evicted->counter, stats.linesEvicted);

    std::uint64_t traced = 0;
    for (const obs::Event &event : machine.observer().trace.drain().events)
        traced += event.kind == obs::EventKind::FaultInject;
    EXPECT_EQ(traced, stats.injectionsTotal());
}

TEST(FaultMachineTest, SameSeedSameMachineFaultHistory)
{
    // Dense plan: the control-flow victim only runs a few thousand
    // cycles, so chaos()'s 60k-cycle interrupt gap would usually miss
    // it entirely.
    fault::FaultPlan plan = interruptOnlyPlan(400);
    plan.portJitterRate = 0.2;
    plan.portJitterMax = 3;
    const auto run = [&plan](std::uint64_t seed) {
        os::MachineConfig mcfg;
        mcfg.seed = seed;
        mcfg.fault = plan;
        mcfg.obs.traceEvents = true;
        os::Machine machine(mcfg);
        auto &kernel = machine.kernel();
        const auto victim =
            attack::buildControlFlowVictim(kernel, false);
        kernel.startOnContext(victim.pid, 0, victim.program);
        EXPECT_TRUE(machine.runUntilHalted(0, 1'000'000));

        std::vector<std::tuple<std::uint64_t, std::uint8_t,
                               std::uint16_t, std::uint64_t>>
            faults;
        for (const obs::Event &e :
             machine.observer().trace.drain().events)
            if (e.kind == obs::EventKind::FaultInject)
                faults.emplace_back(e.cycle, e.a, e.b, e.addr);
        return std::pair(machine.cycle(), faults);
    };

    const auto first = run(77);
    const auto second = run(77);
    EXPECT_EQ(first.first, second.first);
    EXPECT_EQ(first.second, second.second);
    EXPECT_FALSE(first.second.empty());
}
