/**
 * @file
 * Tests for src/obs: the event ring (wrap, overflow accounting, drain
 * ordering, the disabled-path contract), the metric registry
 * (idempotent registration, kind-collision panics, snapshot/merge
 * determinism across campaign worker counts), the Chrome trace-event
 * exporter (well-formed JSON, drop reporting), and the thread-safety
 * contract of the Trace category registry.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "cpu/program.hh"
#include "exp/campaign.hh"
#include "obs/chrome_trace.hh"
#include "obs/cli.hh"
#include "obs/event_trace.hh"
#include "obs/log.hh"
#include "obs/metrics.hh"
#include "obs/observer.hh"
#include "obs/prof.hh"
#include "os/machine.hh"

using namespace uscope;

// ---------------------------------------------------------------------
// The event ring.
// ---------------------------------------------------------------------

TEST(EventTrace, DisabledPathRecordsNothing)
{
    obs::EventTrace trace(16);
    ASSERT_FALSE(trace.enabled());
    for (int i = 0; i < 100; ++i)
        trace.record(obs::EventKind::Retire);
    EXPECT_EQ(trace.totalRecorded(), 0u);
    EXPECT_TRUE(trace.drain().empty());
}

TEST(EventTrace, CapacityRoundsUpToPowerOfTwo)
{
    obs::EventTrace trace(5);
    EXPECT_EQ(trace.capacity(), 8u);
    trace.reserve(16);
    EXPECT_EQ(trace.capacity(), 16u);
}

TEST(EventTrace, EnableWithoutCapacityPanics)
{
    obs::EventTrace trace;
    EXPECT_THROW(trace.setEnabled(true), SimPanic);
    EXPECT_THROW(trace.reserve(0), SimFatal);
}

TEST(EventTrace, WrapOverflowAndDrainOrder)
{
    obs::EventTrace trace(8);
    std::uint64_t cycle = 0;
    trace.bindClock(&cycle);
    trace.setEnabled(true);

    // 20 records into 8 slots: the 12 oldest are overwritten.
    for (cycle = 0; cycle < 20; ++cycle)
        trace.record(obs::EventKind::Retire, 0,
                     static_cast<std::uint16_t>(cycle), cycle * 64);

    const obs::EventLog log = trace.drain();
    EXPECT_EQ(log.total, 20u);
    EXPECT_EQ(log.dropped, 12u);
    ASSERT_EQ(log.events.size(), 8u);
    // Oldest first: cycles 12..19 in order.
    for (std::size_t i = 0; i < log.events.size(); ++i) {
        EXPECT_EQ(log.events[i].cycle, 12 + i);
        EXPECT_EQ(log.events[i].b, 12 + i);
        EXPECT_EQ(log.events[i].addr, (12 + i) * 64);
    }

    trace.clear();
    EXPECT_EQ(trace.totalRecorded(), 0u);
    EXPECT_TRUE(trace.drain().empty());
}

TEST(EventTrace, RecordAtBackdatesSubEvents)
{
    // Page walks complete without advancing the core clock; their
    // sub-events are stamped at start + accumulated latency.
    obs::EventTrace trace(8);
    std::uint64_t cycle = 500;
    trace.bindClock(&cycle);
    trace.setEnabled(true);

    const std::uint64_t start = trace.now();
    EXPECT_EQ(start, 500u);
    trace.recordAt(start, obs::EventKind::WalkStart);
    trace.recordAt(start + 40, obs::EventKind::WalkStep);
    trace.recordAt(start + 90, obs::EventKind::WalkEnd);

    const obs::EventLog log = trace.drain();
    ASSERT_EQ(log.events.size(), 3u);
    EXPECT_EQ(log.events[0].cycle, 500u);
    EXPECT_EQ(log.events[1].cycle, 540u);
    EXPECT_EQ(log.events[2].cycle, 590u);
}

// ---------------------------------------------------------------------
// The metric registry.
// ---------------------------------------------------------------------

TEST(Metrics, RegistrationIsIdempotent)
{
    obs::MetricRegistry registry;
    registry.counter("core.retired").inc(3);
    registry.counter("core.retired").inc(4);
    EXPECT_EQ(registry.counter("core.retired").value(), 7u);
    EXPECT_EQ(registry.size(), 1u);
}

TEST(Metrics, KindCollisionPanics)
{
    obs::MetricRegistry registry;
    registry.counter("vm.walker.steps");
    EXPECT_THROW(registry.gauge("vm.walker.steps"), SimPanic);
    EXPECT_THROW(registry.latency("vm.walker.steps"), SimPanic);

    registry.latency("os.faults.handler_latency");
    EXPECT_THROW(registry.counter("os.faults.handler_latency"),
                 SimPanic);
}

TEST(Metrics, SnapshotIsNameSorted)
{
    obs::MetricRegistry registry;
    registry.counter("z.last").set(1);
    registry.counter("a.first").set(2);
    registry.gauge("m.middle").set(3.0);

    const obs::MetricSnapshot snap = registry.snapshot();
    ASSERT_EQ(snap.size(), 3u);
    EXPECT_EQ(snap.values[0].name, "a.first");
    EXPECT_EQ(snap.values[1].name, "m.middle");
    EXPECT_EQ(snap.values[2].name, "z.last");
    ASSERT_NE(snap.find("m.middle"), nullptr);
    EXPECT_EQ(snap.find("m.middle")->gauge, 3.0);
    EXPECT_EQ(snap.find("absent"), nullptr);
}

TEST(Metrics, MergeSumsAndKeepsUniqueNames)
{
    obs::MetricRegistry ra;
    ra.counter("shared.count").set(10);
    ra.gauge("shared.gauge").set(1.5);
    ra.latency("shared.lat").record(100.0);
    ra.counter("only.a").set(7);

    obs::MetricRegistry rb;
    rb.counter("shared.count").set(32);
    rb.gauge("shared.gauge").set(2.5);
    rb.latency("shared.lat").record(300.0);
    rb.counter("only.b").set(9);

    obs::MetricSnapshot merged = ra.snapshot();
    merged.merge(rb.snapshot());

    EXPECT_EQ(merged.find("shared.count")->counter, 42u);
    EXPECT_EQ(merged.find("shared.gauge")->gauge, 4.0);
    EXPECT_EQ(merged.find("shared.lat")->latency.count(), 2u);
    EXPECT_EQ(merged.find("shared.lat")->latency.mean(), 200.0);
    EXPECT_EQ(merged.find("only.a")->counter, 7u);
    EXPECT_EQ(merged.find("only.b")->counter, 9u);
}

TEST(Metrics, MergeKindMismatchPanics)
{
    obs::MetricRegistry ra;
    ra.counter("x");
    obs::MetricRegistry rb;
    rb.gauge("x");
    obs::MetricSnapshot snap = ra.snapshot();
    EXPECT_THROW(snap.merge(rb.snapshot()), SimPanic);
}

namespace
{

/** A campaign whose trials export seed-dependent metrics. */
exp::CampaignSpec
metricSpec(unsigned workers)
{
    exp::CampaignSpec spec;
    spec.name = "obs-metrics";
    spec.trials = 24;
    spec.masterSeed = 7;
    spec.workers = workers;
    spec.body = [](const exp::TrialContext &ctx) {
        Rng rng(ctx.seed);
        obs::MetricRegistry registry;
        registry.counter("t.count").set(rng.below(1000));
        registry.gauge("t.gauge").set(rng.uniform());
        auto &lat = registry.latency("t.latency");
        for (int i = 0; i < 63; ++i)
            lat.record(rng.uniform() * 400.0);

        exp::TrialOutput out;
        out.metrics = registry.snapshot();
        return out;
    };
    return spec;
}

} // namespace

TEST(Metrics, MergeBitIdenticalAcrossWorkerCounts)
{
    const exp::CampaignResult w1 = exp::runCampaign(metricSpec(1));
    const exp::CampaignResult w2 = exp::runCampaign(metricSpec(2));
    const exp::CampaignResult w4 = exp::runCampaign(metricSpec(4));

    // Bit-exact by contract: merged in trial-index order, never in
    // completion order.
    const std::string j1 = w1.aggregate.metrics.toJson().dump();
    EXPECT_EQ(j1, w2.aggregate.metrics.toJson().dump());
    EXPECT_EQ(j1, w4.aggregate.metrics.toJson().dump());

    const obs::MetricValue *lat = w1.aggregate.metrics.find("t.latency");
    ASSERT_NE(lat, nullptr);
    EXPECT_EQ(lat->latency.count(), 24u * 63u);
}

// ---------------------------------------------------------------------
// The Chrome trace-event exporter.
// ---------------------------------------------------------------------

namespace
{

/** Minimal structural JSON check: balanced outside string literals. */
bool
jsonWellFormed(const std::string &text)
{
    long braces = 0;
    long brackets = 0;
    bool in_string = false;
    bool escaped = false;
    for (char c : text) {
        if (in_string) {
            if (escaped)
                escaped = false;
            else if (c == '\\')
                escaped = true;
            else if (c == '"')
                in_string = false;
            continue;
        }
        switch (c) {
          case '"': in_string = true; break;
          case '{': ++braces; break;
          case '}': --braces; break;
          case '[': ++brackets; break;
          case ']': --brackets; break;
          default: break;
        }
        if (braces < 0 || brackets < 0)
            return false;
    }
    return !in_string && braces == 0 && brackets == 0;
}

/** One log exercising every event kind, with a walk B/E span. */
obs::EventLog
sampleLog()
{
    obs::EventTrace trace(64);
    std::uint64_t cycle = 100;
    trace.bindClock(&cycle);
    trace.setEnabled(true);

    trace.recordAt(100, obs::EventKind::WalkStart, 4, 0, 0x7000);
    trace.recordAt(130, obs::EventKind::WalkStep, 3, 30, 0x1040);
    trace.recordAt(190, obs::EventKind::WalkEnd, 0, 90, 0x7000);
    trace.record(obs::EventKind::TlbMiss, 0, 0, 0x7000);
    trace.record(obs::EventKind::SpecIssue, 0, 12, 0x400);
    trace.record(obs::EventKind::Retire, 1, 12, 0x408);
    trace.record(obs::EventKind::Squash, 0, 14, 0x410);
    trace.record(obs::EventKind::PortConflict, 1, 9, 0x418);
    trace.record(obs::EventKind::CacheAccess, 2, 40, 0x2000);
    trace.record(obs::EventKind::PageFault, 0, 0, 0x7008);
    trace.record(obs::EventKind::Probe, 3, 300, 0x2040);
    trace.record(obs::EventKind::ReplayBoundary, 1, 3, 2);
    trace.record(obs::EventKind::EpisodeEnd, 0, 3, 2);
    return trace.drain();
}

} // namespace

TEST(ChromeTrace, WellFormedAndCoversEveryKind)
{
    const std::string text = obs::toChromeTraceJson(sampleLog());
    EXPECT_TRUE(jsonWellFormed(text));
    EXPECT_EQ(text.rfind("{\"traceEvents\":", 0), 0u);
    // Spans for the walk, instants elsewhere, track names as metadata.
    EXPECT_NE(text.find("\"ph\":\"B\""), std::string::npos);
    EXPECT_NE(text.find("\"ph\":\"E\""), std::string::npos);
    EXPECT_NE(text.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(text.find("thread_name"), std::string::npos);
    EXPECT_NE(text.find("page-walk"), std::string::npos);
    EXPECT_NE(text.find("replay"), std::string::npos);
}

TEST(ChromeTrace, RingDropsAreAnnotatedNeverSilent)
{
    obs::EventTrace trace(4);
    trace.setEnabled(true);
    for (int i = 0; i < 10; ++i)
        trace.record(obs::EventKind::Retire);
    const obs::EventLog log = trace.drain();
    ASSERT_EQ(log.dropped, 6u);

    const std::string text = obs::toChromeTraceJson(log);
    EXPECT_TRUE(jsonWellFormed(text));
    EXPECT_NE(text.find("dropped"), std::string::npos);
}

TEST(ChromeTrace, WriterCapIsAppliedAndReported)
{
    obs::ChromeTraceOptions options;
    options.maxEvents = 4;
    const std::string text = obs::toChromeTraceJson(sampleLog(), options);
    EXPECT_TRUE(jsonWellFormed(text));
    EXPECT_NE(text.find("dropped"), std::string::npos);
}

TEST(ChromeTrace, WriteCreatesParentDirectories)
{
    const std::filesystem::path path =
        std::filesystem::path(testing::TempDir()) / "obs-test" / "sub" /
        "trace.json";
    std::filesystem::remove_all(path.parent_path().parent_path());
    ASSERT_TRUE(obs::writeChromeTrace(path.string(), sampleLog()));
    EXPECT_TRUE(std::filesystem::exists(path));
    EXPECT_GT(std::filesystem::file_size(path), 0u);
}

// ---------------------------------------------------------------------
// A whole Machine under observation.
// ---------------------------------------------------------------------

namespace
{

os::MachineConfig
tracedConfig()
{
    os::MachineConfig config;
    config.obs.traceEvents = true;
    config.obs.traceCapacity = 1u << 12;
    return config;
}

/** Touch a few lines so the TLB, walker, caches and ROB all move. */
void
runSmallProgram(os::Machine &machine)
{
    auto &kernel = machine.kernel();
    const os::Pid pid = kernel.createProcess("obs-victim");
    const VAddr page = kernel.allocVirtual(pid, pageSize);
    cpu::ProgramBuilder b;
    b.movi(1, static_cast<std::int64_t>(page));
    for (unsigned i = 0; i < 8; ++i)
        b.ld(2, 1, static_cast<std::int64_t>(i * lineSize));
    b.halt();
    kernel.startOnContext(
        pid, 0, std::make_shared<const cpu::Program>(b.build()));
    ASSERT_TRUE(machine.runUntilHalted(0, 1'000'000));
}

} // namespace

TEST(Observer, MachineEmitsEventsAndMetrics)
{
    os::Machine machine(tracedConfig());
    runSmallProgram(machine);

    const obs::EventLog log = machine.observer().trace.drain();
    ASSERT_FALSE(log.empty());
    // Ring order is record order, not timestamp order: a walk's
    // sub-events are stamped at start + accumulated latency while the
    // core clock holds still (Perfetto sorts by ts on load).
    bool saw_walk = false;
    bool saw_retire = false;
    bool saw_access = false;
    for (const obs::Event &e : log.events) {
        saw_walk |= e.kind == obs::EventKind::WalkStart;
        saw_retire |= e.kind == obs::EventKind::Retire;
        saw_access |= e.kind == obs::EventKind::CacheAccess;
    }
    EXPECT_TRUE(saw_walk);
    EXPECT_TRUE(saw_retire);
    EXPECT_TRUE(saw_access);

    const obs::MetricSnapshot snap = machine.metricsSnapshot();
    ASSERT_NE(snap.find("core.retired"), nullptr);
    EXPECT_GT(snap.find("core.retired")->counter, 0u);
    ASSERT_NE(snap.find("vm.walker.walks"), nullptr);
    EXPECT_GT(snap.find("vm.walker.walks")->counter, 0u);
    ASSERT_NE(snap.find("mem.l1d.misses"), nullptr);

    // Snapshotting is read-only: two snapshots are identical.
    EXPECT_EQ(snap.toJson().dump(),
              machine.metricsSnapshot().toJson().dump());
}

TEST(Observer, TracingIsOffByDefaultAndCostsNothing)
{
    os::Machine machine{os::MachineConfig{}};
    EXPECT_FALSE(machine.observer().trace.enabled());
    runSmallProgram(machine);
    EXPECT_EQ(machine.observer().trace.totalRecorded(), 0u);
    // Metrics are snapshot-time exports and work regardless.
    EXPECT_GT(machine.metricsSnapshot().size(), 0u);
}

// ---------------------------------------------------------------------
// Bench CLI surface.
// ---------------------------------------------------------------------

TEST(BenchCli, ParsesTraceMetricsAndCapacity)
{
    const char *argv[] = {"bench",
                          "--trace=/tmp/custom.json",
                          "--metrics",
                          "--trace-capacity=4096"};
    const obs::BenchObsOptions opts = obs::parseBenchObsOptions(
        4, const_cast<char **>(argv), "default.json");
    EXPECT_TRUE(opts.trace);
    EXPECT_TRUE(opts.metrics);
    EXPECT_EQ(opts.tracePath, "/tmp/custom.json");
    EXPECT_EQ(opts.traceCapacity, 4096u);

    const char *bare[] = {"bench", "--trace"};
    const obs::BenchObsOptions defaults = obs::parseBenchObsOptions(
        2, const_cast<char **>(bare), "default.json");
    EXPECT_TRUE(defaults.trace);
    EXPECT_FALSE(defaults.metrics);
    EXPECT_EQ(defaults.tracePath, "default.json");

    const char *bad[] = {"bench", "--trace-capacity=zero"};
    EXPECT_THROW(obs::parseBenchObsOptions(
                     2, const_cast<char **>(bad), "d.json"),
                 SimPanic);
}

// ---------------------------------------------------------------------
// Trace category registry: thread-safety contract.
// ---------------------------------------------------------------------

TEST(TraceCategories, CachedFlagTracksCategoryToggles)
{
    Trace::disableAll();
    const Trace a("obs-test-a");
    const Trace b("obs-test-b");
    EXPECT_FALSE(a.enabled());
    EXPECT_FALSE(b.enabled());

    Trace::enable("obs-test-a");
    EXPECT_TRUE(a.enabled());
    EXPECT_FALSE(b.enabled());

    Trace::enable("*");
    EXPECT_TRUE(b.enabled());

    Trace::disable("*");
    EXPECT_TRUE(a.enabled());
    EXPECT_FALSE(b.enabled());

    Trace::disableAll();
    EXPECT_FALSE(a.enabled());

    // A Trace constructed while its category is already on starts
    // enabled (the constructor consults the registry).
    Trace::enable("obs-test-late");
    const Trace late("obs-test-late");
    EXPECT_TRUE(late.enabled());
    Trace::disableAll();
}

TEST(TraceCategories, ConcurrentTogglesAndReadsAreSafe)
{
    // Hammer the registry from mutator threads while reader threads
    // spin on the lock-free enabled() gate — the pattern campaign
    // workers create.  Run under USCOPE_SANITIZE=thread in CI.
    Trace::disableAll();
    const Trace traced("obs-race");
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> reads{0};

    std::vector<std::thread> threads;
    for (int t = 0; t < 2; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < 2000; ++i) {
                Trace::enable("obs-race");
                Trace::disable("obs-race");
            }
        });
    }
    for (int t = 0; t < 2; ++t) {
        threads.emplace_back([&] {
            std::uint64_t seen = 0;
            while (!stop.load(std::memory_order_relaxed))
                seen += traced.enabled() ? 1 : 0;
            reads.fetch_add(seen, std::memory_order_relaxed);
        });
    }
    // Constructing/destroying Traces concurrently with toggles must
    // not corrupt the instance registry either.
    for (int i = 0; i < 500; ++i) {
        const Trace transient("obs-race-transient");
        (void)transient.enabled();
    }

    threads[0].join();
    threads[1].join();
    stop.store(true, std::memory_order_relaxed);
    threads[2].join();
    threads[3].join();
    Trace::disableAll();
    EXPECT_FALSE(traced.enabled());
}

// ---------------------------------------------------------------------
// Trace spills and cross-process aggregation (DESIGN.md §14).
// ---------------------------------------------------------------------

TEST(TraceSpill, JsonRoundTrip)
{
    obs::TraceSpill spill;
    spill.worker = 3;
    spill.trial = 17;
    spill.forkCycle = 123456;
    spill.log = sampleLog();

    const std::string text = obs::traceSpillToJson(spill);
    EXPECT_TRUE(jsonWellFormed(text));

    const std::optional<obs::TraceSpill> back =
        obs::parseTraceSpill(text);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->worker, 3u);
    EXPECT_EQ(back->trial, 17u);
    EXPECT_EQ(back->forkCycle, 123456u);
    EXPECT_EQ(back->log.dropped, spill.log.dropped);
    ASSERT_EQ(back->log.events.size(), spill.log.events.size());
    for (std::size_t i = 0; i < spill.log.events.size(); ++i) {
        EXPECT_EQ(back->log.events[i].cycle, spill.log.events[i].cycle);
        EXPECT_EQ(back->log.events[i].kind, spill.log.events[i].kind);
        EXPECT_EQ(back->log.events[i].addr, spill.log.events[i].addr);
    }

    EXPECT_FALSE(obs::parseTraceSpill("not json").has_value());
    EXPECT_FALSE(obs::parseTraceSpill("{\"worker\":1}").has_value());
}

TEST(TraceSpill, WriteLoadSortsAndSkipsGarbage)
{
    const std::string dir =
        (std::filesystem::path(testing::TempDir()) / "obs-spills")
            .string();
    std::filesystem::remove_all(dir);

    obs::TraceSpill a;
    a.worker = 1;
    a.trial = 2;
    a.log = sampleLog();
    obs::TraceSpill b;
    b.worker = 0;
    b.trial = 5;
    b.log = sampleLog();
    ASSERT_TRUE(obs::writeTraceSpill(dir, a));
    ASSERT_TRUE(obs::writeTraceSpill(dir, b));

    // Garbage spill files are skipped with a warning, not fatal; other
    // files in the dir are ignored entirely.
    {
        std::ofstream garbage(std::filesystem::path(dir) /
                              "trace-w009-t000009.json");
        garbage << "{truncated";
    }
    {
        std::ofstream other(std::filesystem::path(dir) / "notes.txt");
        other << "not a spill";
    }

    const std::vector<obs::TraceSpill> spills =
        obs::loadTraceSpills(dir);
    ASSERT_EQ(spills.size(), 2u);
    // Sorted by filename: trace-w000-t000005 before trace-w001-t000002.
    EXPECT_EQ(spills[0].worker, 0u);
    EXPECT_EQ(spills[0].trial, 5u);
    EXPECT_EQ(spills[1].worker, 1u);
    EXPECT_EQ(spills[1].trial, 2u);

    std::filesystem::remove_all(dir);
}

TEST(TraceSpill, MergeProducesPerWorkerPidLanesAndDedupes)
{
    obs::TraceSpill w0t0;
    w0t0.worker = 0;
    w0t0.trial = 0;
    w0t0.log = sampleLog();
    // The same trial executed twice (a steal race): byte-identical by
    // the determinism contract, deduplicated keeping the lowest worker.
    obs::TraceSpill w1t0 = w0t0;
    w1t0.worker = 1;
    obs::TraceSpill w1t1;
    w1t1.worker = 1;
    w1t1.trial = 1;
    w1t1.log = sampleLog();

    const std::string merged =
        obs::mergeChromeTraces({w0t0, w1t0, w1t1});
    EXPECT_TRUE(jsonWellFormed(merged));

    const std::optional<json::Value> doc = json::Value::parse(merged);
    ASSERT_TRUE(doc.has_value());
    const json::Value *events = doc->get("traceEvents");
    ASSERT_NE(events, nullptr);

    bool sawWorker0Name = false;
    bool sawWorker1Name = false;
    std::set<std::uint64_t> pids;
    bool trial0OnWorker1 = false;
    for (const json::Value &event : events->items()) {
        const json::Value *ph = event.get("ph");
        const json::Value *pid = event.get("pid");
        const json::Value *tid = event.get("tid");
        ASSERT_NE(ph, nullptr);
        ASSERT_NE(pid, nullptr);
        if (ph->asString() == "M") {
            const json::Value *args = event.get("args");
            if (args && args->get("name")) {
                const std::string &name = args->get("name")->asString();
                sawWorker0Name |= name == "worker 0";
                sawWorker1Name |= name == "worker 1";
            }
            continue;
        }
        pids.insert(pid->asU64());
        // Trial tracks live at tid = trial*32 + track; the duplicate
        // trial 0 must render only on worker 0's lane.
        if (pid->asU64() == 1 && tid && tid->asU64() < 32)
            trial0OnWorker1 = true;
    }
    EXPECT_TRUE(sawWorker0Name);
    EXPECT_TRUE(sawWorker1Name);
    EXPECT_EQ(pids.size(), 2u) << "expected two pid lanes";
    EXPECT_TRUE(pids.count(0));
    EXPECT_TRUE(pids.count(1));
    EXPECT_FALSE(trial0OnWorker1)
        << "duplicate trial not deduplicated to the lowest worker";
}

// ---------------------------------------------------------------------
// Phase profiling.
// ---------------------------------------------------------------------

TEST(Prof, ObsLevelNamesRoundTrip)
{
    for (obs::ObsLevel level :
         {obs::ObsLevel::Off, obs::ObsLevel::Metrics,
          obs::ObsLevel::Trace, obs::ObsLevel::Full}) {
        const std::optional<obs::ObsLevel> back =
            obs::parseObsLevel(obs::obsLevelName(level));
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(*back, level);
    }
    EXPECT_FALSE(obs::parseObsLevel("verbose").has_value());
    EXPECT_FALSE(obs::parseObsLevel("").has_value());
}

TEST(Prof, ScopeIsNoOpOnNullAndRecordsOtherwise)
{
    obs::ProfData data;
    {
        obs::ProfScope off(nullptr, "prof.trial.run");
    }
    EXPECT_TRUE(data.empty());

    {
        obs::ProfScope on(&data, "prof.trial.run");
    }
    {
        obs::ProfScope again(&data, "prof.trial.run");
    }
    ASSERT_FALSE(data.empty());
    const auto it = data.phases().find("prof.trial.run");
    ASSERT_NE(it, data.phases().end());
    EXPECT_EQ(it->second.count(), 2u);
}

TEST(Prof, DataJsonRoundTripAndMerge)
{
    obs::ProfData data;
    data.add("prof.trial.run", 0.5);
    data.add("prof.trial.run", 1.5);
    data.add("prof.svc.merge", 0.25);

    const obs::ProfData back = obs::ProfData::fromJson(data.toJson());
    ASSERT_FALSE(back.empty());
    const auto &run = back.phases().at("prof.trial.run");
    EXPECT_EQ(run.count(), 2u);
    EXPECT_DOUBLE_EQ(run.mean(), 1.0);
    EXPECT_DOUBLE_EQ(run.max(), 1.5);
    const auto &merge = back.phases().at("prof.svc.merge");
    EXPECT_EQ(merge.count(), 1u);

    obs::ProfData other;
    other.add("prof.trial.run", 2.0);
    obs::ProfData combined = back;
    combined.merge(other);
    EXPECT_EQ(combined.phases().at("prof.trial.run").count(), 3u);

    // An empty/absent wire field decodes to an empty profile.
    EXPECT_TRUE(obs::ProfData::fromJson(json::Value()).empty());
}

// ---------------------------------------------------------------------
// The observation-must-not-perturb contract, in process.
// ---------------------------------------------------------------------

TEST(Obs, CampaignFingerprintInvariantAcrossObsLevels)
{
    std::string baseline;
    bool first = true;
    for (obs::ObsLevel level :
         {obs::ObsLevel::Off, obs::ObsLevel::Metrics,
          obs::ObsLevel::Trace, obs::ObsLevel::Full}) {
        exp::CampaignSpec spec = metricSpec(2);
        spec.obsLevel = level;
        const exp::CampaignResult result = exp::runCampaign(spec);
        const std::string print = exp::deterministicFingerprint(result);
        if (first) {
            baseline = print;
            first = false;
        } else {
            EXPECT_EQ(print, baseline)
                << "fingerprint diverged at --obs="
                << obs::obsLevelName(level);
        }
        // Profiling is a side channel gated at >= Metrics; it never
        // feeds the fingerprint.
        EXPECT_EQ(result.prof.empty(), level == obs::ObsLevel::Off)
            << obs::obsLevelName(level);
    }
}

TEST(BenchCli, ParsesObsAndLogFlags)
{
    const obs::LogConfig saved = obs::logConfig();

    const char *argv[] = {"bench", "--obs=trace", "--log-level=debug"};
    const obs::BenchObsOptions opts = obs::parseBenchObsOptions(
        3, const_cast<char **>(argv), "default.json");
    ASSERT_TRUE(opts.obsLevel.has_value());
    EXPECT_EQ(*opts.obsLevel, obs::ObsLevel::Trace);
    EXPECT_EQ(obs::logConfig().level, obs::LogLevel::Debug);

    const char *bad[] = {"bench", "--obs=everything"};
    EXPECT_THROW(obs::parseBenchObsOptions(
                     2, const_cast<char **>(bad), "d.json"),
                 SimPanic);

    obs::configureLog(saved);
}
