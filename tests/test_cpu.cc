/**
 * @file
 * Unit and property tests for src/cpu: ISA classification, the
 * program builder, the branch predictor, the port model, and the
 * out-of-order SMT core — including a golden-model property test that
 * runs random straight-line programs against a simple architectural
 * interpreter.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>

#include "common/logging.hh"
#include "common/random.hh"
#include "cpu/core.hh"
#include "cpu/isa.hh"
#include "cpu/ports.hh"
#include "cpu/predictor.hh"
#include "cpu/program.hh"
#include "mem/hierarchy.hh"
#include "mem/phys_mem.hh"
#include "vm/frame_alloc.hh"
#include "vm/mmu.hh"
#include "vm/page_table.hh"

using namespace uscope;
using namespace uscope::cpu;

namespace
{

/** A bare core rig with one identity-mapped page table. */
struct CoreRig
{
    mem::PhysMem mem;
    mem::Hierarchy hierarchy;
    vm::Mmu mmu{mem, hierarchy};
    vm::FrameAllocator frames{1, 100000};
    vm::PageTable table{mem, frames};
    Core core;

    explicit CoreRig(const CoreConfig &config = CoreConfig{})
        : core(mem, hierarchy, mmu, config)
    {
        core.setFaultHandler([](const FaultInfo &info) {
            panic("unexpected fault at pc %llu",
                  static_cast<unsigned long long>(info.pc));
        });
    }

    /** Map [va, va+len) to fresh frames. */
    void
    mapRange(VAddr va, std::uint64_t len)
    {
        for (Vpn vpn = pageNumber(va);
             vpn <= pageNumber(va + len - 1); ++vpn) {
            table.map(vpn, frames.alloc(),
                      vm::pte::present | vm::pte::writable);
        }
    }

    void
    start(Program program, unsigned ctx = 0)
    {
        core.startContext(
            ctx, std::make_shared<const Program>(std::move(program)),
            0, 1, table.root(), 0);
    }

    bool
    runToHalt(unsigned ctx = 0, Cycles max = 1'000'000)
    {
        return core.runUntil([&]() { return core.halted(ctx); }, max);
    }
};

} // namespace

// ---------------------------------------------------------------------
// ISA metadata
// ---------------------------------------------------------------------

TEST(Isa, Classification)
{
    EXPECT_TRUE(isLoad(Op::Ld));
    EXPECT_TRUE(isLoad(Op::Ldf));
    EXPECT_FALSE(isLoad(Op::St));
    EXPECT_TRUE(isStore(Op::Stf));
    EXPECT_TRUE(isMem(Op::Ld32));
    EXPECT_FALSE(isMem(Op::Mul));
    EXPECT_TRUE(isBranch(Op::Jmp));
    EXPECT_TRUE(isCondBranch(Op::Beq));
    EXPECT_FALSE(isCondBranch(Op::Jmp));
}

TEST(Isa, RegisterFileRouting)
{
    EXPECT_TRUE(writesInt(Op::Mul));
    EXPECT_TRUE(writesFp(Op::Fdiv));
    EXPECT_FALSE(writesInt(Op::Fdiv));
    EXPECT_TRUE(writesInt(Op::Rdtsc));
    EXPECT_FALSE(writesInt(Op::St));
    EXPECT_TRUE(readsFp2(Op::Stf));   // store data is FP
    EXPECT_FALSE(readsFp1(Op::Stf));  // base address is integer
    EXPECT_TRUE(readsFp1(Op::Fdiv));
    EXPECT_FALSE(readsSrc1(Op::Movi));
    EXPECT_TRUE(readsSrc2(Op::Beq));
}

TEST(Isa, NamesAndToString)
{
    EXPECT_STREQ(opName(Op::Fdiv), "fdiv");
    EXPECT_STREQ(opName(Op::Txbegin), "txbegin");
    Instruction inst{Op::Addi, 3, 2, 0, -7, 0};
    EXPECT_NE(inst.toString().find("addi"), std::string::npos);
    EXPECT_NE(inst.toString().find("-7"), std::string::npos);
}

// ---------------------------------------------------------------------
// Program builder
// ---------------------------------------------------------------------

TEST(ProgramTest, ForwardAndBackwardLabels)
{
    ProgramBuilder b;
    b.jmp("end")            // forward reference
        .label("mid")
        .addi(1, 1, 1)
        .label("end")
        .beq(1, 2, "mid")   // backward reference
        .halt();
    Program program = b.build();
    EXPECT_EQ(program.at(0).target, 2u);
    EXPECT_EQ(program.at(2).target, 1u);
    EXPECT_EQ(program.label("mid"), 1u);
}

TEST(ProgramTest, UndefinedLabelFatal)
{
    ProgramBuilder b;
    b.jmp("nowhere");
    EXPECT_THROW(b.build(), SimFatal);
}

TEST(ProgramTest, DuplicateLabelFatal)
{
    ProgramBuilder b;
    b.label("x");
    EXPECT_THROW(b.label("x"), SimFatal);
}

TEST(ProgramTest, OutOfRangePcIsHalt)
{
    Program program = ProgramBuilder{}.nop().build();
    EXPECT_EQ(program.at(500).op, Op::Halt);
}

TEST(ProgramTest, DisassembleListsEverything)
{
    ProgramBuilder b;
    b.label("entry").movi(1, 42).halt();
    const std::string listing = b.build().disassemble();
    EXPECT_NE(listing.find("entry:"), std::string::npos);
    EXPECT_NE(listing.find("movi"), std::string::npos);
    EXPECT_NE(listing.find("halt"), std::string::npos);
}

// ---------------------------------------------------------------------
// Branch predictor
// ---------------------------------------------------------------------

TEST(Predictor, TwoBitHysteresis)
{
    BranchPredictor bp(64);
    const std::uint64_t pc = 0x1234;
    EXPECT_FALSE(bp.predict(pc));  // weakly not-taken reset state
    bp.update(pc, true);
    EXPECT_TRUE(bp.predict(pc));   // 1 -> 2: now predicts taken
    bp.update(pc, true);           // saturate at 3
    bp.update(pc, false);          // 3 -> 2: still taken
    EXPECT_TRUE(bp.predict(pc));
    bp.update(pc, false);          // 2 -> 1
    EXPECT_FALSE(bp.predict(pc));
}

TEST(Predictor, FlushYieldsPublicState)
{
    BranchPredictor bp(64);
    for (std::uint64_t pc = 0; pc < 64; ++pc)
        bp.prime(pc, true);
    bp.flush();
    for (std::uint64_t pc = 0; pc < 64; ++pc)
        EXPECT_FALSE(bp.predict(pc));
    EXPECT_EQ(bp.stats().flushes, 1u);
}

TEST(Predictor, PrimeSaturates)
{
    BranchPredictor bp(64);
    bp.prime(7, true);
    EXPECT_EQ(bp.counter(7), 3u);
    bp.update(7, false);
    EXPECT_TRUE(bp.predict(7));  // one wrong outcome doesn't flip it
}

// ---------------------------------------------------------------------
// Port model
// ---------------------------------------------------------------------

TEST(Ports, RoutingTable)
{
    EXPECT_EQ(portsFor(Op::Fdiv).first, portDiv);
    EXPECT_EQ(portsFor(Op::Mul).first, portMul);
    EXPECT_EQ(portsFor(Op::Ld).first, portLoad0);
    EXPECT_EQ(portsFor(Op::Ld).second, portLoad1);
    EXPECT_EQ(portsFor(Op::St).first, portStore);
    EXPECT_EQ(portsFor(Op::Beq).first, portAlu1);
    EXPECT_TRUE(unpipelined(Op::Div));
    EXPECT_TRUE(unpipelined(Op::Fdiv));
    EXPECT_FALSE(unpipelined(Op::Fmul));
}

TEST(Ports, UnpipelinedOccupancy)
{
    PortState ports;
    ports.newCycle();
    EXPECT_TRUE(ports.canIssue(portDiv, 0));
    ports.occupy(portDiv, 0, 24, true);
    EXPECT_FALSE(ports.canIssue(portDiv, 0));
    // Still busy for the full latency even across cycles.
    ports.newCycle();
    EXPECT_FALSE(ports.canIssue(portDiv, 10));
    EXPECT_TRUE(ports.canIssue(portDiv, 24));
    EXPECT_EQ(ports.busyUntil(portDiv), 24u);
}

TEST(Ports, PipelinedOnePerCycle)
{
    PortState ports;
    ports.newCycle();
    ports.occupy(portMul, 0, 3, false);
    EXPECT_FALSE(ports.canIssue(portMul, 0));  // this cycle used
    ports.newCycle();
    EXPECT_TRUE(ports.canIssue(portMul, 1));   // next cycle free
    EXPECT_EQ(ports.issues(portMul), 1u);
}

// ---------------------------------------------------------------------
// Core semantics
// ---------------------------------------------------------------------

TEST(CoreTest, IntAluOps)
{
    CoreRig rig;
    ProgramBuilder b;
    b.movi(1, 100)
        .movi(2, 7)
        .add(3, 1, 2)      // 107
        .sub(4, 1, 2)      // 93
        .and_(5, 1, 2)     // 100 & 7 = 4
        .or_(6, 1, 2)      // 103
        .xor_(7, 1, 2)     // 99
        .andi(8, 1, 0xF)   // 4
        .shli(9, 2, 4)     // 112
        .shri(10, 1, 2)    // 25
        .mul(11, 1, 2)     // 700
        .div(12, 1, 2)     // 14
        .halt();
    rig.start(b.build());
    ASSERT_TRUE(rig.runToHalt());
    EXPECT_EQ(rig.core.readIntReg(0, 3), 107u);
    EXPECT_EQ(rig.core.readIntReg(0, 4), 93u);
    EXPECT_EQ(rig.core.readIntReg(0, 5), 4u);
    EXPECT_EQ(rig.core.readIntReg(0, 6), 103u);
    EXPECT_EQ(rig.core.readIntReg(0, 7), 99u);
    EXPECT_EQ(rig.core.readIntReg(0, 8), 4u);
    EXPECT_EQ(rig.core.readIntReg(0, 9), 112u);
    EXPECT_EQ(rig.core.readIntReg(0, 10), 25u);
    EXPECT_EQ(rig.core.readIntReg(0, 11), 700u);
    EXPECT_EQ(rig.core.readIntReg(0, 12), 14u);
}

TEST(CoreTest, DivByZeroSaturates)
{
    CoreRig rig;
    ProgramBuilder b;
    b.movi(1, 5).movi(2, 0).div(3, 1, 2).halt();
    rig.start(b.build());
    ASSERT_TRUE(rig.runToHalt());
    EXPECT_EQ(rig.core.readIntReg(0, 3), ~std::uint64_t{0});
}

TEST(CoreTest, FpOps)
{
    CoreRig rig;
    ProgramBuilder b;
    b.fmovi(1, 6.0)
        .fmovi(2, 1.5)
        .fadd(3, 1, 2)   // 7.5
        .fmul(4, 1, 2)   // 9.0
        .fdiv(5, 1, 2)   // 4.0
        .fmov(6, 5)
        .halt();
    rig.start(b.build());
    ASSERT_TRUE(rig.runToHalt());
    EXPECT_DOUBLE_EQ(rig.core.readFpReg(0, 3), 7.5);
    EXPECT_DOUBLE_EQ(rig.core.readFpReg(0, 4), 9.0);
    EXPECT_DOUBLE_EQ(rig.core.readFpReg(0, 5), 4.0);
    EXPECT_DOUBLE_EQ(rig.core.readFpReg(0, 6), 4.0);
}

TEST(CoreTest, SubnormalFdivIsSlower)
{
    // The Andrysco-style timing difference §4.3 exploits: time two
    // one-divide programs with RDTSC.
    auto time_div = [](double operand) {
        CoreRig rig;
        ProgramBuilder b;
        b.fmovi(1, operand)
            .fmovi(2, 2.0)
            .rdtsc(10)
            .fence()
            .fdiv(3, 1, 2)
            .fence()
            .rdtsc(11)
            .sub(12, 11, 10)
            .halt();
        rig.start(b.build());
        EXPECT_TRUE(rig.runToHalt());
        return rig.core.readIntReg(0, 12);
    };
    const Cycles normal = time_div(1.5);
    const Cycles subnormal = time_div(4.9406564584124654e-324);
    EXPECT_GT(subnormal, normal + 50);
}

TEST(CoreTest, StoreBufferForwarding)
{
    CoreRig rig;
    rig.mapRange(0x10000, pageSize);
    ProgramBuilder b;
    b.movi(1, 0x10000)
        .movi(2, 77)
        .st(1, 8, 2)
        .ld(3, 1, 8)    // must forward 77 from the in-flight store
        .halt();
    rig.start(b.build());
    ASSERT_TRUE(rig.runToHalt());
    EXPECT_EQ(rig.core.readIntReg(0, 3), 77u);
    EXPECT_EQ(rig.mem.read64(*rig.table.lookupPpn(0x10000)
                                 << pageShift |
                             8),
              77u);
}

TEST(CoreTest, Ld32ZeroExtendsAndSt32Truncates)
{
    CoreRig rig;
    rig.mapRange(0x10000, pageSize);
    ProgramBuilder b;
    b.movi(1, 0x10000)
        .movi(2, static_cast<std::int64_t>(0xAABBCCDD11223344ull))
        .st(1, 0, 2)
        .ld32(3, 1, 0)          // low 32 bits only
        .st32(1, 16, 2)         // writes 0x11223344
        .ld(4, 1, 16)
        .halt();
    rig.start(b.build());
    ASSERT_TRUE(rig.runToHalt());
    EXPECT_EQ(rig.core.readIntReg(0, 3), 0x11223344u);
    EXPECT_EQ(rig.core.readIntReg(0, 4), 0x11223344u);
}

TEST(CoreTest, BranchKindsResolveCorrectly)
{
    CoreRig rig;
    ProgramBuilder b;
    // r10 collects a bitmask of taken paths.
    b.movi(1, 5)
        .movi(2, 5)
        .movi(3, -1)
        .movi(9, 1)
        .movi(10, 0)
        .beq(1, 2, "t1")
        .jmp("f1")
        .label("t1")
        .or_(10, 10, 9)  // bit: beq taken
        .label("f1")
        .blt(3, 1, "t2")
        .jmp("f2")
        .label("t2")
        .addi(10, 10, 2)  // blt taken (signed!)
        .label("f2")
        .bge(1, 2, "t3")
        .jmp("end")
        .label("t3")
        .addi(10, 10, 4)
        .label("end")
        .halt();
    rig.start(b.build());
    ASSERT_TRUE(rig.runToHalt());
    EXPECT_EQ(rig.core.readIntReg(0, 10), 1u + 2u + 4u);
}

TEST(CoreTest, MispredictRecoversArchitecturally)
{
    CoreRig rig;
    // Alternating-direction loop: the 2-bit predictor must mispredict
    // several times yet the architectural sum must stay exact.
    ProgramBuilder b;
    b.movi(1, 0)     // i
        .movi(2, 20) // limit
        .movi(3, 0)  // sum
        .movi(4, 0)
        .label("loop")
        .andi(5, 1, 1)
        .beq(5, 4, "even")
        .addi(3, 3, 100)   // odd
        .jmp("next")
        .label("even")
        .addi(3, 3, 1)
        .label("next")
        .addi(1, 1, 1)
        .blt(1, 2, "loop")
        .halt();
    rig.start(b.build());
    ASSERT_TRUE(rig.runToHalt());
    EXPECT_EQ(rig.core.readIntReg(0, 3), 10u * 100 + 10u * 1);
    EXPECT_GT(rig.core.stats(0).mispredicts, 0u);
    EXPECT_GT(rig.core.stats(0).squashed, 0u);
}

TEST(CoreTest, RdtscMonotonicAndFenced)
{
    CoreRig rig;
    ProgramBuilder b;
    b.rdtsc(1)
        .fence()
        .movi(5, 1000)
        .movi(6, 3)
        .div(7, 5, 6)
        .fence()
        .rdtsc(2)
        .sub(3, 2, 1)
        .halt();
    rig.start(b.build());
    ASSERT_TRUE(rig.runToHalt());
    // The fenced interval must cover at least the divide latency.
    EXPECT_GE(rig.core.readIntReg(0, 3),
              rig.core.config().divLatency);
}

TEST(CoreTest, SmtContextsAreIsolated)
{
    CoreRig rig;
    ProgramBuilder a;
    a.movi(1, 11).addi(1, 1, 1).halt();
    ProgramBuilder b;
    b.movi(1, 500).addi(1, 1, 2).halt();
    rig.start(a.build(), 0);
    rig.start(b.build(), 1);
    ASSERT_TRUE(rig.runToHalt(0));
    ASSERT_TRUE(rig.runToHalt(1));
    EXPECT_EQ(rig.core.readIntReg(0, 1), 12u);
    EXPECT_EQ(rig.core.readIntReg(1, 1), 502u);
}

TEST(CoreTest, SmtDividerContentionIsMeasurable)
{
    // A context timing a divide burst sees higher latency when its
    // sibling also divides than when it multiplies — the §4.3 channel
    // at core granularity.
    auto measure = [](bool sibling_divides) {
        CoreRig rig;
        ProgramBuilder meas;
        meas.fmovi(1, 3.0)
            .fmovi(2, 7.0)
            .fence()
            .rdtsc(10);
        for (int i = 0; i < 4; ++i)
            meas.fdiv(3, 2, 1);
        meas.fence().rdtsc(11).sub(12, 11, 10).halt();

        ProgramBuilder noise;
        noise.fmovi(1, 3.0).fmovi(2, 7.0).movi(5, 200).movi(6, 0)
            .label("loop");
        if (sibling_divides)
            noise.fdiv(3, 2, 1);
        else
            noise.fmul(3, 2, 1);
        noise.addi(5, 5, -1).bne(5, 6, "loop").halt();

        rig.start(noise.build(), 1);
        rig.core.runUntil([]() { return false; }, 100);  // warm up
        rig.start(meas.build(), 0);
        EXPECT_TRUE(rig.runToHalt(0, 100000));
        return rig.core.readIntReg(0, 12);
    };
    const Cycles with_divs = measure(true);
    const Cycles with_muls = measure(false);
    EXPECT_GT(with_divs, with_muls + 20);
}

TEST(CoreTest, RobFillsBehindLongLoad)
{
    CoreRig rig;
    rig.mapRange(0x10000, pageSize);
    // A DRAM-latency load followed by many independent adds: the ROB
    // must fill while the load is outstanding.
    ProgramBuilder b;
    b.movi(1, 0x10000).ld(2, 1, 0);
    for (int i = 0; i < 200; ++i)
        b.addi(3, 3, 1);
    b.halt();
    rig.start(b.build());

    bool saw_full = false;
    for (int i = 0; i < 2000 && !rig.core.halted(0); ++i) {
        rig.core.tick();
        saw_full |= rig.core.robOccupancy(0) >=
                    rig.core.config().robPerContext;
    }
    EXPECT_TRUE(saw_full);
    ASSERT_TRUE(rig.runToHalt());
    EXPECT_EQ(rig.core.readIntReg(0, 3), 200u);
}

TEST(CoreTest, TxCommitPublishesStores)
{
    CoreRig rig;
    rig.mapRange(0x10000, pageSize);
    const PAddr pa = *rig.table.lookupPpn(0x10000) << pageShift;
    ProgramBuilder b;
    b.movi(1, 0x10000)
        .movi(2, 42)
        .txbegin("abort")
        .st(1, 0, 2)
        .ld(3, 1, 0)     // reads own transactional store
        .txend()
        .jmp("end")
        .label("abort")
        .movi(9, 1)
        .label("end")
        .halt();
    rig.start(b.build());

    // Mid-transaction the store must NOT be in memory yet; poll.
    bool observed_isolation = false;
    for (int i = 0; i < 100000 && !rig.core.halted(0); ++i) {
        rig.core.tick();
        if (rig.core.inTransaction(0) && rig.mem.read64(pa) == 0)
            observed_isolation = true;
    }
    EXPECT_TRUE(observed_isolation);
    EXPECT_EQ(rig.mem.read64(pa), 42u);          // committed
    EXPECT_EQ(rig.core.readIntReg(0, 3), 42u);   // forwarded in-tx
    EXPECT_EQ(rig.core.readIntReg(0, 9), 0u);    // no abort
}

TEST(CoreTest, TxAbortRollsBackRegistersAndStores)
{
    CoreRig rig;
    rig.mapRange(0x10000, pageSize);
    const PAddr pa = *rig.table.lookupPpn(0x10000) << pageShift;
    ProgramBuilder b;
    b.movi(1, 0x10000)
        .movi(2, 42)
        .movi(9, 0)
        .txbegin("abort")
        .st(1, 0, 2)
        .movi(2, 99)     // must roll back to 42
        .jmp("spin")
        .label("spin")
        .addi(3, 3, 1)
        .jmp("spin")
        .label("abort")
        .movi(9, 1)
        .halt();
    rig.start(b.build());

    // Let the transaction get going, then abort it from "outside".
    rig.core.runUntil([&]() { return rig.core.inTransaction(0); },
                      100000);
    ASSERT_TRUE(rig.core.inTransaction(0));
    rig.core.runUntil([]() { return false; }, 200);
    ASSERT_TRUE(rig.core.abortTransaction(0));
    ASSERT_TRUE(rig.runToHalt());
    EXPECT_EQ(rig.core.readIntReg(0, 9), 1u);    // abort path ran
    EXPECT_EQ(rig.core.readIntReg(0, 2), 42u);   // register restored
    EXPECT_EQ(rig.mem.read64(pa), 0u);           // store discarded
    EXPECT_EQ(rig.core.stats(0).txAborts, 1u);
}

TEST(CoreTest, TxAbortsOnWriteSetEviction)
{
    CoreRig rig;
    rig.mapRange(0x10000, pageSize);
    const PAddr pa = *rig.table.lookupPpn(0x10000) << pageShift;
    ProgramBuilder b;
    b.movi(1, 0x10000)
        .movi(2, 42)
        .movi(9, 0)
        .txbegin("abort")
        .st(1, 0, 2)
        .label("spin")
        .addi(3, 3, 1)
        .jmp("spin")
        .label("abort")
        .movi(9, 1)
        .halt();
    rig.start(b.build());
    rig.core.runUntil([&]() { return rig.core.inTransaction(0); },
                      100000);
    // Wait until the store has retired into the write set.
    rig.core.runUntil([]() { return false; }, 3000);
    rig.core.notifyLineEvicted(pa);
    ASSERT_TRUE(rig.runToHalt());
    EXPECT_EQ(rig.core.readIntReg(0, 9), 1u);
}

TEST(CoreTest, FenceOnFlushStarvesSpeculation)
{
    // With the §8 defense on, a faulting load's shadow must not leave
    // residue from younger loads.
    for (bool fenced : {false, true}) {
        CoreConfig config;
        config.fenceOnPipelineFlush = fenced;
        CoreRig rig(config);
        rig.mapRange(0x10000, pageSize);
        rig.mapRange(0x30000, pageSize);
        rig.table.setPresent(0x10000, false);
        const PAddr probe_pa =
            (*rig.table.lookupPpn(0x30000) << pageShift);

        unsigned faults = 0;
        rig.core.setFaultHandler([&](const FaultInfo &) {
            ++faults;
            if (faults >= 3)
                rig.table.setPresent(0x10000, true);
            rig.mmu.invlpg(0x10000, 1);
        });

        ProgramBuilder b;
        b.movi(1, 0x10000)
            .movi(4, 0x30000)
            .ld(2, 1, 0)   // replay handle
            .ld(5, 4, 0)   // sensitive load
            .halt();
        rig.start(b.build());
        ASSERT_TRUE(rig.runToHalt(0, 1'000'000));

        // Flush-state check happens when 2 faults have occurred but
        // before release; re-derive via hierarchy state now: with the
        // fence the line was only fetched after the final release (1
        // demand fetch); without it, the speculative window touched
        // it repeatedly.  Either way it is cached now, so instead
        // verify fault count and use a second run below.
        EXPECT_EQ(faults, 3u);
        (void)probe_pa;
    }
}

TEST(CoreTest, FenceOnFlushBlocksWindowResidue)
{
    CoreConfig config;
    config.fenceOnPipelineFlush = true;
    CoreRig rig(config);
    rig.mapRange(0x10000, pageSize);
    rig.mapRange(0x30000, pageSize);
    rig.table.setPresent(0x10000, false);
    const PAddr probe_pa = *rig.table.lookupPpn(0x30000) << pageShift;

    bool residue_during_replay = false;
    unsigned faults = 0;
    rig.core.setFaultHandler([&](const FaultInfo &) {
        ++faults;
        if (faults > 1) {
            // Probe before deciding: did the previous window touch it?
            residue_during_replay |=
                rig.hierarchy.peekLevel(probe_pa) != mem::HitLevel::Dram;
        }
        rig.hierarchy.flushLine(probe_pa);
        if (faults >= 5)
            rig.table.setPresent(0x10000, true);
        rig.mmu.invlpg(0x10000, 1);
    });

    ProgramBuilder b;
    b.movi(1, 0x10000)
        .movi(4, 0x30000)
        .ld(2, 1, 0)
        .ld(5, 4, 0)
        .halt();
    rig.start(b.build());
    ASSERT_TRUE(rig.runToHalt(0, 1'000'000));
    EXPECT_FALSE(residue_during_replay);
}

TEST(CoreTest, MemProbeSeesSpeculativeAccesses)
{
    CoreRig rig;
    rig.mapRange(0x10000, pageSize);
    rig.mapRange(0x30000, pageSize);
    rig.table.setPresent(0x10000, false);

    unsigned spec_loads = 0;
    rig.core.setMemProbe([&](unsigned, VAddr va, PAddr, bool is_store,
                             bool) {
        if (!is_store && pageBase(va) == 0x30000)
            ++spec_loads;
    });
    unsigned faults = 0;
    rig.core.setFaultHandler([&](const FaultInfo &) {
        if (++faults >= 4)
            rig.table.setPresent(0x10000, true);
        rig.mmu.invlpg(0x10000, 1);
    });

    ProgramBuilder b;
    b.movi(1, 0x10000).movi(4, 0x30000).ld(2, 1, 0).ld(5, 4, 0).halt();
    rig.start(b.build());
    ASSERT_TRUE(rig.runToHalt(0, 1'000'000));
    // One execution per replay window (4 faults) plus the final,
    // architectural one after release.
    EXPECT_EQ(spec_loads, 5u);
}

TEST(CoreTest, StallContextBlocksProgress)
{
    CoreRig rig;
    ProgramBuilder b;
    b.movi(1, 1).halt();
    rig.start(b.build());
    rig.core.stallContext(0, 500);
    rig.core.runUntil([]() { return false; }, 100);
    EXPECT_EQ(rig.core.contextState(0), CtxState::Stalled);
    EXPECT_FALSE(rig.core.halted(0));
    ASSERT_TRUE(rig.runToHalt());
    EXPECT_GE(rig.core.stats(0).stallCycles, 500u);
}

TEST(CoreTest, RedirectRestartsHaltedContext)
{
    CoreRig rig;
    ProgramBuilder b;
    b.addi(1, 1, 1).halt();
    rig.start(b.build());
    ASSERT_TRUE(rig.runToHalt());
    EXPECT_EQ(rig.core.readIntReg(0, 1), 1u);
    rig.core.redirectContext(0, 0);
    ASSERT_TRUE(rig.runToHalt());
    EXPECT_EQ(rig.core.readIntReg(0, 1), 2u);
}

// ---------------------------------------------------------------------
// Golden-model property test
// ---------------------------------------------------------------------

namespace
{

/** Architectural interpreter for straight-line (branch-free) code. */
struct GoldenModel
{
    std::array<std::uint64_t, numIntRegs> intRegs{};
    std::array<double, numFpRegs> fpRegs{};
    std::map<std::uint64_t, std::uint64_t> memory;  // 8-byte granules

    std::uint64_t
    load(std::uint64_t addr, unsigned len)
    {
        std::uint64_t value = 0;
        for (unsigned i = 0; i < len; ++i) {
            const std::uint64_t word = memory[(addr + i) & ~7ull];
            const unsigned shift = ((addr + i) & 7) * 8;
            value |= ((word >> shift) & 0xFF) << (8 * i);
        }
        return value;
    }

    void
    store(std::uint64_t addr, std::uint64_t value, unsigned len)
    {
        for (unsigned i = 0; i < len; ++i) {
            std::uint64_t &word = memory[(addr + i) & ~7ull];
            const unsigned shift = ((addr + i) & 7) * 8;
            word = (word & ~(0xFFull << shift)) |
                   (((value >> (8 * i)) & 0xFF) << shift);
        }
    }

    void
    exec(const Instruction &inst)
    {
        auto &r = intRegs;
        auto &f = fpRegs;
        switch (inst.op) {
          case Op::Movi: r[inst.rd] = inst.imm; break;
          case Op::Mov: r[inst.rd] = r[inst.rs1]; break;
          case Op::Add: r[inst.rd] = r[inst.rs1] + r[inst.rs2]; break;
          case Op::Addi: r[inst.rd] = r[inst.rs1] + inst.imm; break;
          case Op::Sub: r[inst.rd] = r[inst.rs1] - r[inst.rs2]; break;
          case Op::And: r[inst.rd] = r[inst.rs1] & r[inst.rs2]; break;
          case Op::Andi: r[inst.rd] = r[inst.rs1] & inst.imm; break;
          case Op::Or: r[inst.rd] = r[inst.rs1] | r[inst.rs2]; break;
          case Op::Xor: r[inst.rd] = r[inst.rs1] ^ r[inst.rs2]; break;
          case Op::Shli:
            r[inst.rd] = r[inst.rs1] << (inst.imm & 63);
            break;
          case Op::Shri:
            r[inst.rd] = r[inst.rs1] >> (inst.imm & 63);
            break;
          case Op::Mul:
            r[inst.rd] = r[inst.rs1] * r[inst.rs2];
            break;
          case Op::Div:
            r[inst.rd] = r[inst.rs2] ? r[inst.rs1] / r[inst.rs2]
                                     : ~std::uint64_t{0};
            break;
          case Op::Fmovi:
            f[inst.rd] = std::bit_cast<double>(
                static_cast<std::uint64_t>(inst.imm));
            break;
          case Op::Fmov: f[inst.rd] = f[inst.rs1]; break;
          case Op::Fadd:
            f[inst.rd] = f[inst.rs1] + f[inst.rs2];
            break;
          case Op::Fmul:
            f[inst.rd] = f[inst.rs1] * f[inst.rs2];
            break;
          case Op::Fdiv:
            f[inst.rd] = f[inst.rs1] / f[inst.rs2];
            break;
          case Op::Ld:
            r[inst.rd] = load(r[inst.rs1] + inst.imm, 8);
            break;
          case Op::Ld32:
            r[inst.rd] = load(r[inst.rs1] + inst.imm, 4);
            break;
          case Op::Ldf:
            f[inst.rd] = std::bit_cast<double>(
                load(r[inst.rs1] + inst.imm, 8));
            break;
          case Op::St:
            store(r[inst.rs1] + inst.imm, r[inst.rs2], 8);
            break;
          case Op::St32:
            store(r[inst.rs1] + inst.imm, r[inst.rs2] & 0xFFFFFFFF, 4);
            break;
          case Op::Stf:
            store(r[inst.rs1] + inst.imm,
                  std::bit_cast<std::uint64_t>(f[inst.rs2]), 8);
            break;
          default:
            break;
        }
    }
};

} // namespace

class GoldenModelTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(GoldenModelTest, RandomStraightLineProgramsMatch)
{
    Rng rng(GetParam() * 31337 + 17);
    CoreRig rig;
    const VAddr data = 0x40000;
    rig.mapRange(data, 2 * pageSize);

    GoldenModel golden;
    ProgramBuilder b;
    // Seed a base register so loads/stores stay in the mapped window.
    b.movi(31, static_cast<std::int64_t>(data));
    golden.intRegs[31] = data;

    const Op alu_ops[] = {Op::Movi, Op::Mov, Op::Add, Op::Addi,
                          Op::Sub, Op::And, Op::Andi, Op::Or,
                          Op::Xor, Op::Shli, Op::Shri, Op::Mul,
                          Op::Div, Op::Fmovi, Op::Fmov, Op::Fadd,
                          Op::Fmul, Op::Ld, Op::St, Op::Ld32,
                          Op::St32, Op::Ldf, Op::Stf};
    std::vector<Instruction> insts;
    for (int i = 0; i < 300; ++i) {
        Instruction inst;
        inst.op = alu_ops[rng.below(std::size(alu_ops))];
        inst.rd = static_cast<Reg>(rng.below(30));
        inst.rs1 = static_cast<Reg>(rng.below(30));
        inst.rs2 = static_cast<Reg>(rng.below(30));
        inst.imm = static_cast<std::int64_t>(rng.below(1000));
        if (isMem(inst.op)) {
            inst.rs1 = 31;  // base register
            inst.imm = static_cast<std::int64_t>(
                rng.below(pageSize) & ~7ull);
        }
        if (inst.op == Op::Fmovi)
            inst.imm = static_cast<std::int64_t>(
                std::bit_cast<std::uint64_t>(
                    1.0 + static_cast<double>(rng.below(100))));
        if (inst.op == Op::Shli || inst.op == Op::Shri)
            inst.imm = static_cast<std::int64_t>(rng.below(64));
        insts.push_back(inst);
        golden.exec(inst);
    }

    for (const Instruction &inst : insts) {
        switch (inst.op) {
          case Op::Movi: b.movi(inst.rd, inst.imm); break;
          case Op::Mov: b.mov(inst.rd, inst.rs1); break;
          case Op::Add: b.add(inst.rd, inst.rs1, inst.rs2); break;
          case Op::Addi: b.addi(inst.rd, inst.rs1, inst.imm); break;
          case Op::Sub: b.sub(inst.rd, inst.rs1, inst.rs2); break;
          case Op::And: b.and_(inst.rd, inst.rs1, inst.rs2); break;
          case Op::Andi: b.andi(inst.rd, inst.rs1, inst.imm); break;
          case Op::Or: b.or_(inst.rd, inst.rs1, inst.rs2); break;
          case Op::Xor: b.xor_(inst.rd, inst.rs1, inst.rs2); break;
          case Op::Shli:
            b.shli(inst.rd, inst.rs1,
                   static_cast<unsigned>(inst.imm));
            break;
          case Op::Shri:
            b.shri(inst.rd, inst.rs1,
                   static_cast<unsigned>(inst.imm));
            break;
          case Op::Mul: b.mul(inst.rd, inst.rs1, inst.rs2); break;
          case Op::Div: b.div(inst.rd, inst.rs1, inst.rs2); break;
          case Op::Fmovi:
            b.fmovi(inst.rd,
                    std::bit_cast<double>(
                        static_cast<std::uint64_t>(inst.imm)));
            break;
          case Op::Fmov: b.fmov(inst.rd, inst.rs1); break;
          case Op::Fadd: b.fadd(inst.rd, inst.rs1, inst.rs2); break;
          case Op::Fmul: b.fmul(inst.rd, inst.rs1, inst.rs2); break;
          case Op::Ld: b.ld(inst.rd, inst.rs1, inst.imm); break;
          case Op::Ld32: b.ld32(inst.rd, inst.rs1, inst.imm); break;
          case Op::Ldf: b.ldf(inst.rd, inst.rs1, inst.imm); break;
          case Op::St: b.st(inst.rs1, inst.imm, inst.rs2); break;
          case Op::St32: b.st32(inst.rs1, inst.imm, inst.rs2); break;
          case Op::Stf: b.stf(inst.rs1, inst.imm, inst.rs2); break;
          default: break;
        }
    }
    b.halt();

    rig.start(b.build());
    ASSERT_TRUE(rig.runToHalt(0, 5'000'000));

    for (unsigned reg = 0; reg < 30; ++reg) {
        EXPECT_EQ(rig.core.readIntReg(0, static_cast<Reg>(reg)),
                  golden.intRegs[reg])
            << "int reg " << reg << " seed " << GetParam();
        const double expect = golden.fpRegs[reg];
        const double got = rig.core.readFpReg(0, static_cast<Reg>(reg));
        EXPECT_EQ(std::bit_cast<std::uint64_t>(got),
                  std::bit_cast<std::uint64_t>(expect))
            << "fp reg " << reg << " seed " << GetParam();
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GoldenModelTest,
                         ::testing::Range(0u, 12u));
