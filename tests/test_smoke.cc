/**
 * @file
 * End-to-end smoke tests: the whole machine boots, runs programs,
 * takes page faults, and replays.  These pin down the core semantics
 * every attack in src/attack depends on.
 */

#include <gtest/gtest.h>

#include "cpu/program.hh"
#include "os/machine.hh"

using namespace uscope;

namespace
{

std::shared_ptr<const cpu::Program>
share(cpu::Program program)
{
    return std::make_shared<const cpu::Program>(std::move(program));
}

} // namespace

TEST(Smoke, ArithmeticProgramRunsToCompletion)
{
    os::Machine machine;
    const os::Pid pid = machine.kernel().createProcess("victim");

    cpu::ProgramBuilder builder;
    builder.movi(1, 6)
        .movi(2, 7)
        .mul(3, 1, 2)      // r3 = 42
        .addi(4, 3, 100)   // r4 = 142
        .div(5, 4, 2)      // r5 = 142/7 = 20
        .halt();
    machine.kernel().startOnContext(pid, 0, share(builder.build()));

    ASSERT_TRUE(machine.runUntilHalted(0, 10000));
    EXPECT_EQ(machine.core().readIntReg(0, 3), 42u);
    EXPECT_EQ(machine.core().readIntReg(0, 4), 142u);
    EXPECT_EQ(machine.core().readIntReg(0, 5), 20u);
}

TEST(Smoke, LoadStoreRoundTrip)
{
    os::Machine machine;
    auto &kernel = machine.kernel();
    const os::Pid pid = kernel.createProcess("victim");
    const VAddr buf = kernel.allocVirtual(pid, pageSize);

    cpu::ProgramBuilder builder;
    builder.movi(1, static_cast<std::int64_t>(buf))
        .movi(2, 0xDEADBEEFCAFEF00Dull)
        .st(1, 16, 2)
        .ld(3, 1, 16)
        .halt();
    kernel.startOnContext(pid, 0, share(builder.build()));

    ASSERT_TRUE(machine.runUntilHalted(0, 100000));
    EXPECT_EQ(machine.core().readIntReg(0, 3), 0xDEADBEEFCAFEF00Dull);

    std::uint64_t stored = 0;
    ASSERT_TRUE(kernel.readVirtual(pid, buf + 16, &stored, 8));
    EXPECT_EQ(stored, 0xDEADBEEFCAFEF00Dull);
}

TEST(Smoke, BranchLoopComputesSum)
{
    os::Machine machine;
    const os::Pid pid = machine.kernel().createProcess("victim");

    // sum = 0; for (i = 10; i != 0; --i) sum += i;  => 55
    cpu::ProgramBuilder builder;
    builder.movi(1, 10)
        .movi(2, 0)
        .movi(3, 0)
        .label("loop")
        .add(2, 2, 1)
        .addi(1, 1, -1)
        .bne(1, 3, "loop")
        .halt();
    machine.kernel().startOnContext(pid, 0, share(builder.build()));

    ASSERT_TRUE(machine.runUntilHalted(0, 100000));
    EXPECT_EQ(machine.core().readIntReg(0, 2), 55u);
}

TEST(Smoke, DefaultHandlerServicesNonPresentPage)
{
    os::Machine machine;
    auto &kernel = machine.kernel();
    const os::Pid pid = kernel.createProcess("victim");
    const VAddr buf = kernel.allocVirtual(pid, pageSize);
    const std::uint64_t magic = 0x1122334455667788ull;
    ASSERT_TRUE(kernel.writeVirtual(pid, buf, &magic, 8));

    // Clear the present bit: the first access faults, the default
    // handler re-sets it, and the load retries successfully.
    kernel.pageTable(pid).setPresent(buf, false);

    cpu::ProgramBuilder builder;
    builder.movi(1, static_cast<std::int64_t>(buf)).ld(2, 1, 0).halt();
    kernel.startOnContext(pid, 0, share(builder.build()));

    ASSERT_TRUE(machine.runUntilHalted(0, 100000));
    EXPECT_EQ(machine.core().readIntReg(0, 2), magic);
    EXPECT_EQ(kernel.faultCount(pid), 1u);
}

namespace
{

/** Module that keeps the present bit clear for the first N faults. */
class ReplayNTimes : public os::FaultModule
{
  public:
    ReplayNTimes(os::Kernel &kernel, VAddr va, unsigned replays)
        : kernel_(kernel), va_(va), replays_(replays) {}

    bool
    onPageFault(const os::PageFaultEvent &event) override
    {
        if (pageBase(event.va) != pageBase(va_))
            return false;
        ++faults_;
        if (faults_ <= replays_) {
            // Keep replaying: leave present clear, re-flush the
            // translation path so the next walk is long again.
            kernel_.flushTranslationEntries(event.pid, va_);
            kernel_.invlpg(event.pid, va_);
            return true;
        }
        kernel_.setPresent(event.pid, va_, true);
        kernel_.invlpg(event.pid, va_);
        return true;
    }

    unsigned faults() const { return faults_; }

  private:
    os::Kernel &kernel_;
    VAddr va_;
    unsigned replays_;
    unsigned faults_ = 0;
};

} // namespace

TEST(Smoke, ModuleDrivenReplayLoopReplaysExactly)
{
    os::Machine machine;
    auto &kernel = machine.kernel();
    const os::Pid pid = kernel.createProcess("victim");
    const VAddr handle = kernel.allocVirtual(pid, pageSize);
    const VAddr other = kernel.allocVirtual(pid, pageSize);

    const std::uint64_t seven = 7;
    ASSERT_TRUE(kernel.writeVirtual(pid, other, &seven, 8));

    kernel.pageTable(pid).setPresent(handle, false);
    ReplayNTimes module(kernel, handle, 10);
    kernel.registerModule(&module);

    // The replay handle (ld r2) is followed by "sensitive" work that
    // executes speculatively on every replay but retires once.
    cpu::ProgramBuilder builder;
    builder.movi(1, static_cast<std::int64_t>(handle))
        .movi(4, static_cast<std::int64_t>(other))
        .ld(2, 1, 0)        // replay handle
        .ld(5, 4, 0)        // sensitive load (different page)
        .addi(6, 5, 1)
        .halt();
    kernel.startOnContext(pid, 0, share(builder.build()));

    ASSERT_TRUE(machine.runUntilHalted(0, 2000000));
    // 10 replays + 1 final fault that releases the victim.
    EXPECT_EQ(module.faults(), 11u);
    EXPECT_EQ(kernel.faultCount(pid), 11u);
    // Architectural result is still correct: replays are invisible.
    EXPECT_EQ(machine.core().readIntReg(0, 5), 7u);
    EXPECT_EQ(machine.core().readIntReg(0, 6), 8u);
}

TEST(Smoke, SpeculativeLoadLeavesCacheResidueAcrossReplays)
{
    os::Machine machine;
    auto &kernel = machine.kernel();
    const os::Pid pid = kernel.createProcess("victim");
    const VAddr handle = kernel.allocVirtual(pid, pageSize);
    const VAddr secret_page = kernel.allocVirtual(pid, pageSize);

    kernel.pageTable(pid).setPresent(handle, false);
    ReplayNTimes module(kernel, handle, 3);
    kernel.registerModule(&module);

    // The secret-dependent load targets line 5 of secret_page.
    const VAddr secret_line = secret_page + 5 * lineSize;
    const PAddr secret_pa = *kernel.translate(pid, secret_line);
    kernel.flushPhysLine(secret_pa);
    ASSERT_EQ(machine.hierarchy().peekLevel(secret_pa),
              mem::HitLevel::Dram);

    cpu::ProgramBuilder builder;
    builder.movi(1, static_cast<std::int64_t>(handle))
        .movi(4, static_cast<std::int64_t>(secret_line))
        .ld(2, 1, 0)        // replay handle: faults, never retires...
        .ld(5, 4, 0)        // ...but this speculative load still runs
        .halt();
    kernel.startOnContext(pid, 0, share(builder.build()));

    // Run until the first replay completed (2 faults seen).
    ASSERT_TRUE(machine.runUntil(
        [&]() { return kernel.faultCount(pid) >= 2; }, 1000000));

    // The squashed speculative load left the line in the cache: this
    // is the microarchitectural residue MicroScope measures.
    EXPECT_EQ(machine.hierarchy().peekLevel(secret_pa),
              mem::HitLevel::L1);
}
