/**
 * @file
 * Tests for src/obs/log: level parsing, severity filtering, the
 * pretty and NDJSON line shapes, USCOPE_LOG environment config, the
 * common/logging bridge, and the observation-must-not-perturb
 * contract — campaign fingerprints are byte-identical at every log
 * level and output shape, even when trial bodies log on every trial.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "common/logging.hh"
#include "common/random.hh"
#include "exp/campaign.hh"
#include "obs/log.hh"
#include "obs/metrics.hh"

using namespace uscope;

namespace
{

constexpr obs::Logger testLog{"test.log"};

/** Save/restore the process-wide sink config around a test. */
struct ScopedLogConfig
{
    obs::LogConfig saved = obs::logConfig();
    ~ScopedLogConfig() { obs::configureLog(saved); }
};

std::string
captureLine(obs::LogConfig config, void (*emit)())
{
    obs::configureLog(config);
    testing::internal::CaptureStderr();
    emit();
    return testing::internal::GetCapturedStderr();
}

} // namespace

TEST(Log, LevelNamesRoundTrip)
{
    for (obs::LogLevel level :
         {obs::LogLevel::Error, obs::LogLevel::Warn,
          obs::LogLevel::Info, obs::LogLevel::Debug}) {
        const std::optional<obs::LogLevel> back =
            obs::parseLogLevel(obs::logLevelName(level));
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(*back, level);
    }
    EXPECT_FALSE(obs::parseLogLevel("loud").has_value());
    EXPECT_FALSE(obs::parseLogLevel("").has_value());
}

TEST(Log, SinkFiltersBySeverity)
{
    ScopedLogConfig scoped;

    const std::string dropped =
        captureLine({obs::LogLevel::Error, false},
                    [] { testLog.warn("should not appear"); });
    EXPECT_TRUE(dropped.empty());
    EXPECT_FALSE(obs::logEnabled(obs::LogLevel::Warn));
    EXPECT_TRUE(obs::logEnabled(obs::LogLevel::Error));

    const std::string kept =
        captureLine({obs::LogLevel::Warn, false},
                    [] { testLog.warn("emitted %d", 42); });
    EXPECT_NE(kept.find("warn"), std::string::npos);
    EXPECT_NE(kept.find("test.log"), std::string::npos);
    EXPECT_NE(kept.find("emitted 42"), std::string::npos);

    const std::string debugDropped =
        captureLine({obs::LogLevel::Info, false},
                    [] { testLog.debug("too fine"); });
    EXPECT_TRUE(debugDropped.empty());
}

TEST(Log, PrettyAndJsonLineShapes)
{
    ScopedLogConfig scoped;

    const std::string pretty =
        captureLine({obs::LogLevel::Debug, false},
                    [] { testLog.info("hello \"world\""); });
    EXPECT_EQ(pretty.front(), '[');
    EXPECT_NE(pretty.find("info"), std::string::npos);
    EXPECT_NE(pretty.find("test.log:"), std::string::npos);

    const std::string json =
        captureLine({obs::LogLevel::Debug, true},
                    [] { testLog.info("hello \"world\""); });
    EXPECT_EQ(json.front(), '{');
    EXPECT_NE(json.find("\"level\":\"info\""), std::string::npos);
    EXPECT_NE(json.find("\"component\":\"test.log\""),
              std::string::npos);
    // The quote inside the message must be escaped for NDJSON.
    EXPECT_NE(json.find("hello \\\"world\\\""), std::string::npos);
    EXPECT_EQ(json.find("hello \"world\""), std::string::npos);

    const std::string cycled =
        captureLine({obs::LogLevel::Debug, true},
                    [] { testLog.infoAt(1234, "at a cycle"); });
    EXPECT_NE(cycled.find("\"cycle\":1234"), std::string::npos);
}

TEST(Log, ConfiguresFromEnvironment)
{
    ScopedLogConfig scoped;

    ::setenv("USCOPE_LOG", "debug,json", 1);
    obs::configureLogFromEnv();
    EXPECT_EQ(obs::logConfig().level, obs::LogLevel::Debug);
    EXPECT_TRUE(obs::logConfig().json);

    // Unrecognized tokens are ignored; recognized ones still apply.
    ::setenv("USCOPE_LOG", "bogus,error", 1);
    testing::internal::CaptureStderr();
    obs::configureLogFromEnv();
    testing::internal::GetCapturedStderr();
    EXPECT_EQ(obs::logConfig().level, obs::LogLevel::Error);

    ::unsetenv("USCOPE_LOG");
}

namespace
{

/** A campaign whose trials log on every trial and export
 *  seed-dependent metrics — the fingerprint invariance probe. */
exp::CampaignSpec
loggingSpec()
{
    exp::CampaignSpec spec;
    spec.name = "log-invariance";
    spec.trials = 16;
    spec.masterSeed = 11;
    spec.workers = 2;
    spec.body = [](const exp::TrialContext &ctx) {
        static constexpr obs::Logger bodyLog{"test.trial"};
        bodyLog.debug("trial %zu starting", ctx.index);
        Rng rng(ctx.seed);
        obs::MetricRegistry registry;
        registry.counter("t.count").set(rng.below(1000));
        registry.gauge("t.gauge").set(rng.uniform());
        warn("trial %zu bridged warn", ctx.index);

        exp::TrialOutput out;
        out.metrics = registry.snapshot();
        out.metric.add(rng.uniform());
        return out;
    };
    return spec;
}

std::string
fingerprintUnder(obs::LogConfig config)
{
    obs::configureLog(config);
    testing::internal::CaptureStderr();
    const exp::CampaignResult result =
        exp::runCampaign(loggingSpec());
    testing::internal::GetCapturedStderr();
    return exp::deterministicFingerprint(result);
}

} // namespace

TEST(Log, CampaignFingerprintInvariantAcrossLevelsAndShapes)
{
    ScopedLogConfig scoped;

    const std::string silent =
        fingerprintUnder({obs::LogLevel::Error, false});
    ASSERT_FALSE(silent.empty());
    EXPECT_EQ(fingerprintUnder({obs::LogLevel::Warn, false}), silent);
    EXPECT_EQ(fingerprintUnder({obs::LogLevel::Debug, false}), silent);
    EXPECT_EQ(fingerprintUnder({obs::LogLevel::Debug, true}), silent);
}

TEST(Log, SimBridgeReroutesAndHonorsLevel)
{
    ScopedLogConfig scoped;
    obs::installSimLogBridge();

    const std::string dropped =
        captureLine({obs::LogLevel::Error, false},
                    [] { warn("bridged noise %d", 7); });
    EXPECT_TRUE(dropped.empty());

    const std::string kept =
        captureLine({obs::LogLevel::Warn, false},
                    [] { warn("bridged noise %d", 7); });
    EXPECT_NE(kept.find("sim"), std::string::npos);
    EXPECT_NE(kept.find("bridged noise 7"), std::string::npos);

    const std::string informed =
        captureLine({obs::LogLevel::Info, false},
                    [] { inform("bridged inform"); });
    EXPECT_NE(informed.find("bridged inform"), std::string::npos);
}
