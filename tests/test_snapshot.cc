/**
 * @file
 * Bit-identity suite for prefix-snapshot forking, Machine pooling, and
 * COW paging (DESIGN.md §12).
 *
 * The contracts enforced here:
 *
 *  - **COW isolation.** PhysMem instances sharing an arena via
 *    shareStateFrom() never observe each other's writes, and sharing
 *    allocates nothing until a write actually diverges a page.
 *  - **Pooled reset.** Machine::reset() lands bit-identically on the
 *    state a freshly constructed Machine would have — every RNG
 *    stream, stat, and metric — while keeping its page slabs.
 *  - **Fork-vs-cold.** A trial forked from a post-warmup Snapshot and
 *    reseeded equals, bit for bit, a cold trial that runs the same
 *    warmup and reseeds at the same point — across fast-forward
 *    on/off, fault plans (including USCOPE_FAULT_PLAN=chaos, which
 *    the CI chaos job exports), worker counts 1/2/4, and every
 *    prefixCache × machinePool combination of the campaign runner.
 *
 * Runs under TSan in CI, where the worker sweep doubles as a race
 * check on the per-worker snapshot caches and machine pools.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/random.hh"
#include "core/microscope.hh"
#include "crypto/aes.hh"
#include "crypto/aes_codegen.hh"
#include "exp/campaign.hh"
#include "exp/json.hh"
#include "mem/phys_mem.hh"
#include "os/machine.hh"

using namespace uscope;

namespace
{

// ---------------------------------------------------------------------
// PhysMem: COW sharing and slab reuse.
// ---------------------------------------------------------------------

TEST(PhysMemCow, SharedPagesReadBackAndWritesStayPrivate)
{
    mem::PhysMem a(1 << 20);
    a.write64(0x1000, 0x1111111111111111ull);
    a.write64(0x2000, 0x2222222222222222ull);

    mem::PhysMem b(1 << 20);
    b.shareStateFrom(a);
    EXPECT_EQ(b.read64(0x1000), 0x1111111111111111ull);
    EXPECT_EQ(b.read64(0x2000), 0x2222222222222222ull);
    EXPECT_EQ(b.pagesAllocated(), a.pagesAllocated());

    // Diverge one page in the fork; the source must not see it, and
    // the untouched page stays shared.
    b.write64(0x1000, 0xbbbbbbbbbbbbbbbbull);
    EXPECT_EQ(a.read64(0x1000), 0x1111111111111111ull);
    EXPECT_EQ(b.read64(0x1000), 0xbbbbbbbbbbbbbbbbull);
    EXPECT_EQ(b.read64(0x2000), 0x2222222222222222ull);

    // Sharing is symmetric: a write on the *source* side of a still-
    // shared page diverges the source, not the fork.
    a.write64(0x2008, 0xaaaaaaaaaaaaaaaaull);
    EXPECT_EQ(b.read64(0x2008), 0u);
    EXPECT_EQ(b.read64(0x2000), 0x2222222222222222ull);
}

TEST(PhysMemCow, ZeroPageOnSharedPageStaysPrivate)
{
    mem::PhysMem a(1 << 20);
    a.write64(0x3000, 0x3333333333333333ull);
    mem::PhysMem b(1 << 20);
    b.shareStateFrom(a);

    b.zeroPage(0x3000 / pageSize);
    EXPECT_EQ(b.read64(0x3000), 0u);
    EXPECT_EQ(a.read64(0x3000), 0x3333333333333333ull);
}

TEST(PhysMemCow, ResetKeepsSlabsForReuse)
{
    mem::PhysMem a(1 << 20);
    for (unsigned p = 0; p < 8; ++p)
        a.write64(std::uint64_t{p} * pageSize, p + 1);
    const std::size_t reserved = a.slabPagesReserved();
    EXPECT_GE(reserved, a.pagesAllocated());

    a.reset();
    EXPECT_EQ(a.pagesAllocated(), 0u);
    // The arena keeps its slabs: re-population must not grow it.
    EXPECT_EQ(a.slabPagesReserved(), reserved);
    for (unsigned p = 0; p < 8; ++p)
        a.write64(std::uint64_t{p} * pageSize, p + 100);
    EXPECT_EQ(a.slabPagesReserved(), reserved);
    EXPECT_EQ(a.read64(0), 100u);
}

// ---------------------------------------------------------------------
// Machine-level fork and pooling, on an AES-victim workload.
// ---------------------------------------------------------------------

constexpr std::uint8_t victimKey[16] = {
    0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
    0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};

struct Victim
{
    os::Pid pid = 0;
    crypto::AesVictimLayout layout;
    std::shared_ptr<const cpu::Program> program;
};

/** The warmup prefix: enclave build + one warm decryption. */
Victim
buildVictim(os::Machine &machine)
{
    Victim v;
    const crypto::AesKey dec(victimKey, 128, true);
    const crypto::AesKey enc(victimKey, 128, false);
    os::Kernel &kernel = machine.kernel();
    v.pid = kernel.createProcess("aes-victim");
    v.layout = crypto::setupAesVictim(kernel, v.pid, dec);
    v.program = std::make_shared<const cpu::Program>(
        crypto::buildAesDecryptProgram(v.layout));

    const std::uint8_t warm_plain[16] = {};
    std::uint8_t ct[16];
    crypto::encryptBlock(enc, warm_plain, ct);
    crypto::loadCiphertext(kernel, v.pid, v.layout, ct);
    kernel.startOnContext(v.pid, 0, v.program);
    machine.runUntilHalted(0, 50'000'000);
    return v;
}

/** The per-trial body: decrypt a seed-derived ciphertext. */
void
runBody(os::Machine &machine, const Victim &v, std::uint64_t seed)
{
    const crypto::AesKey enc(victimKey, 128, false);
    Rng rng(seed);
    std::uint8_t plaintext[16], ct[16];
    for (unsigned i = 0; i < 16; ++i)
        plaintext[i] = static_cast<std::uint8_t>(rng.below(256));
    crypto::encryptBlock(enc, plaintext, ct);
    crypto::loadCiphertext(machine.kernel(), v.pid, v.layout, ct);
    machine.kernel().startOnContext(v.pid, 0, v.program);
    machine.runUntilHalted(0, 50'000'000);
}

/** Every simulated metric the machine exports, plus the clock.
 *  mem.physmem.* counts host-side COW re-shares — how a state was
 *  reached, which is exactly what forked-vs-cold arms differ in —
 *  so it is dropped, as exp::deterministicFingerprint drops it. */
std::string
stateFingerprint(const os::Machine &machine)
{
    obs::MetricSnapshot snap = machine.metricsSnapshot();
    snap.values.erase(
        std::remove_if(snap.values.begin(), snap.values.end(),
                       [](const obs::MetricValue &v) {
                           return v.name.rfind("mem.physmem.", 0) == 0;
                       }),
        snap.values.end());
    return snap.toJson().dump() + "@" + std::to_string(machine.cycle());
}

TEST(MachineFork, ForkedTrialIsBitIdenticalToColdTrial)
{
    constexpr std::uint64_t warmupSeed = 7001;
    constexpr std::uint64_t trialSeed = 9002;

    // Cold: construct with the warmup seed, run the warmup, reseed at
    // the fork point, run the body.
    os::MachineConfig config;
    config.seed = warmupSeed;
    os::Machine cold(config);
    const Victim coldVictim = buildVictim(cold);
    cold.reseed(trialSeed);
    runBody(cold, coldVictim, trialSeed);

    // Fork: run the same warmup once, snapshot, construct from the
    // snapshot, reseed with the same trial seed, run the body.
    os::Machine warm(config);
    const Victim victim = buildVictim(warm);
    const os::Snapshot snap = warm.snapshot();
    os::Machine fork(snap);
    fork.reseed(trialSeed);
    runBody(fork, victim, trialSeed);

    EXPECT_EQ(stateFingerprint(fork), stateFingerprint(cold));

    // restoreFrom (the pooled-fork path) lands on the same state.
    os::Machine pooled(config);
    pooled.restoreFrom(snap);
    pooled.reseed(trialSeed);
    runBody(pooled, victim, trialSeed);
    EXPECT_EQ(stateFingerprint(pooled), stateFingerprint(cold));
}

TEST(MachineFork, SiblingForksDoNotInterfere)
{
    os::MachineConfig config;
    config.seed = 7001;
    os::Machine warm(config);
    const Victim victim = buildVictim(warm);
    const os::Snapshot snap = warm.snapshot();

    // Reference: a lone fork running trial seed 1.
    os::Machine lone(snap);
    lone.reseed(1);
    runBody(lone, victim, 1);
    const std::string reference = stateFingerprint(lone);

    // Two siblings off the same snapshot, run interleaved with
    // different seeds: COW isolation means sibling 1's result is
    // unaffected by sibling 2's writes to shared pages.
    os::Machine fork1(snap);
    os::Machine fork2(snap);
    fork1.reseed(1);
    fork2.reseed(2);
    runBody(fork2, victim, 2);
    runBody(fork1, victim, 1);
    EXPECT_EQ(stateFingerprint(fork1), reference);

    // The snapshot itself stayed frozen: a third fork still works.
    os::Machine fork3(snap);
    fork3.reseed(1);
    runBody(fork3, victim, 1);
    EXPECT_EQ(stateFingerprint(fork3), reference);
}

TEST(MachinePool, ResetEqualsFreshConstruction)
{
    os::MachineConfig first;
    first.seed = 11;
    os::Machine pooled(first);
    const Victim v = buildVictim(pooled);
    runBody(pooled, v, 11);

    // Reset the dirty machine to a different seed and re-run; a
    // freshly constructed machine must be indistinguishable.
    os::MachineConfig second = first;
    second.seed = 22;
    pooled.reset(second);
    const Victim pooledVictim = buildVictim(pooled);
    runBody(pooled, pooledVictim, 22);

    os::Machine fresh(second);
    const Victim freshVictim = buildVictim(fresh);
    runBody(fresh, freshVictim, 22);

    EXPECT_EQ(stateFingerprint(pooled), stateFingerprint(fresh));
    // And the pooled instance kept its slabs across the reset.
    EXPECT_GE(pooled.mem().slabPagesReserved(),
              pooled.mem().pagesAllocated());
}

TEST(MachineFork, StructuralMismatchIsRejected)
{
    os::Machine machine;
    os::MachineConfig other = machine.config();
    other.core.numContexts = machine.config().core.numContexts + 1;
    EXPECT_THROW(machine.reset(other), std::exception);
}

// ---------------------------------------------------------------------
// Campaign-level: prefixCache x machinePool x workers, under faults.
// ---------------------------------------------------------------------

/** The bench's comparison: per-trial payloads, metrics, and statuses
 *  with host-mechanics meta-counters (obs.trace.*, mem.physmem.*,
 *  os.replay.batch.*) stripped — those record how a state was
 *  reached (pooled vs cold machines, COW re-shares), which is
 *  exactly what the arms below vary. */
std::string
campaignFingerprint(const exp::CampaignResult &result)
{
    return exp::deterministicFingerprint(result);
}

/**
 * A warmup-heavy replay campaign: the prefix builds the enclave and
 * runs a warm decryption; each trial replays one MicroScope episode
 * against its own ciphertext.  The machine keeps its config defaults,
 * so the CI chaos job's USCOPE_FAULT_PLAN=chaos flows into every arm.
 */
exp::CampaignSpec
prefixCampaign(bool prefix_cache, bool pool, unsigned workers,
               bool fast_forward = true)
{
    exp::CampaignSpec spec;
    spec.name = "snapshot_prefix";
    spec.trials = 4;
    spec.masterSeed = 42;
    spec.workers = workers;
    spec.prefixCache = prefix_cache;
    spec.machinePool = pool;
    spec.machineFactory =
        [fast_forward](const exp::TrialContext &) {
            os::MachineConfig config;
            config.fastForward = fast_forward;
            return config;
        };
    spec.warmup = [](os::Machine &m) -> std::shared_ptr<const void> {
        return std::make_shared<Victim>(buildVictim(m));
    };
    spec.body = [](const exp::TrialContext &ctx) {
        os::Machine &m = *ctx.fork;
        const auto *v = static_cast<const Victim *>(ctx.warmupData);

        const crypto::AesKey enc(victimKey, 128, false);
        Rng rng(ctx.seed);
        std::uint8_t plaintext[16], ct[16];
        for (unsigned i = 0; i < 16; ++i)
            plaintext[i] = static_cast<std::uint8_t>(rng.below(256));
        crypto::encryptBlock(enc, plaintext, ct);
        crypto::loadCiphertext(m.kernel(), v->pid, v->layout, ct);

        std::uint64_t replayProbes = 0;
        ms::Microscope scope(m);
        ms::AttackRecipe recipe;
        recipe.victim = v->pid;
        recipe.replayHandle = v->layout.td0;
        recipe.pivot = v->layout.rk;
        recipe.confidence = 2;
        recipe.maxEpisodes = 1;
        recipe.walkPlan = ms::PageWalkPlan::longest();
        recipe.onReplay = [&](const ms::ReplayEvent &) {
            ++replayProbes;
            return true;
        };
        scope.setRecipe(std::move(recipe));

        scope.arm();
        m.kernel().startOnContext(v->pid, 0, v->program);
        m.runUntilHalted(0, 50'000'000);
        scope.disarm();

        exp::TrialOutput out;
        out.metric.add(static_cast<double>(replayProbes));
        out.simCycles = m.cycle() - ctx.forkCycle;
        out.scope.episodes = 1;
        out.scope.totalReplays = scope.stats().totalReplays;
        out.metrics = m.metricsSnapshot();
        out.payload = exp::json::Value::object()
                          .set("replay_probes", replayProbes)
                          .set("fork_cycle", ctx.forkCycle);
        return out;
    };
    return spec;
}

TEST(PrefixCampaign, FingerprintInvariantAcrossCachePoolAndWorkers)
{
    const std::string reference = campaignFingerprint(
        exp::runCampaign(prefixCampaign(false, false, 1)));
    ASSERT_FALSE(reference.empty());

    for (const bool cache : {false, true}) {
        for (const bool pool : {false, true}) {
            for (const unsigned workers : {1u, 2u, 4u}) {
                const std::string fp =
                    campaignFingerprint(exp::runCampaign(
                        prefixCampaign(cache, pool, workers)));
                EXPECT_EQ(fp, reference)
                    << "prefixCache=" << cache << " pool=" << pool
                    << " workers=" << workers;
            }
        }
    }
}

TEST(PrefixCampaign, FingerprintInvariantWithFastForwardOff)
{
    const std::string slow = campaignFingerprint(exp::runCampaign(
        prefixCampaign(false, false, 1, /*fast_forward=*/false)));
    const std::string forked = campaignFingerprint(exp::runCampaign(
        prefixCampaign(true, true, 2, /*fast_forward=*/false)));
    EXPECT_EQ(forked, slow);
}

TEST(PrefixCampaign, RetriedTrialsReForkDeterministically)
{
    // A body that throws on its first attempt for odd trials: the
    // retry re-forks from the same snapshot with the retry seed, so
    // the campaign stays deterministic across cache/pool settings.
    const auto flaky = [](bool cache, bool pool) {
        exp::CampaignSpec spec = prefixCampaign(cache, pool, 1);
        auto inner = spec.body;
        spec.maxRetries = 1;
        spec.body = [inner](const exp::TrialContext &ctx) {
            if (ctx.index % 2 == 1 &&
                ctx.seed ==
                    exp::deriveTrialSeed(42, ctx.index))
                throw std::runtime_error("first attempt fails");
            return inner(ctx);
        };
        return spec;
    };
    const exp::CampaignResult cold =
        exp::runCampaign(flaky(false, false));
    const exp::CampaignResult forked =
        exp::runCampaign(flaky(true, true));
    EXPECT_EQ(cold.aggregate.retried, 2u);
    EXPECT_EQ(campaignFingerprint(forked), campaignFingerprint(cold));
}

TEST(PrefixCampaign, ProvideMachinePoolsColdCampaigns)
{
    // No warmup: provideMachine still hands bodies a runner-managed
    // (pooled or fresh) machine, bit-identically either way.
    const auto spec = [](bool pool) {
        exp::CampaignSpec s;
        s.name = "snapshot_provide";
        s.trials = 3;
        s.masterSeed = 42;
        s.workers = 1;
        s.provideMachine = true;
        s.machinePool = pool;
        s.body = [](const exp::TrialContext &ctx) {
            EXPECT_NE(ctx.fork, nullptr);
            EXPECT_EQ(ctx.forkCycle, 0u);
            os::Machine &m = *ctx.fork;
            const Victim v = buildVictim(m);
            runBody(m, v, ctx.seed);
            exp::TrialOutput out;
            out.simCycles = m.cycle();
            out.metrics = m.metricsSnapshot();
            out.payload = exp::json::Value::object().set(
                "cycles", m.cycle());
            return out;
        };
        return s;
    };
    const exp::CampaignResult pooled = exp::runCampaign(spec(true));
    const exp::CampaignResult fresh = exp::runCampaign(spec(false));
    EXPECT_EQ(campaignFingerprint(pooled), campaignFingerprint(fresh));
}

// ---------------------------------------------------------------------
// perTrialMetrics: skip the work, keep the aggregate.
// ---------------------------------------------------------------------

TEST(PerTrialMetrics, DroppedSnapshotsLeaveAggregateIntact)
{
    exp::CampaignSpec with = prefixCampaign(true, true, 1);
    exp::CampaignSpec without = prefixCampaign(true, true, 1);
    without.perTrialMetrics = false;

    const exp::CampaignResult kept = exp::runCampaign(std::move(with));
    const exp::CampaignResult dropped =
        exp::runCampaign(std::move(without));

    // The aggregate (including merged metrics) is unaffected...
    EXPECT_EQ(dropped.aggregate.toJson().dump(),
              kept.aggregate.toJson().dump());
    ASSERT_EQ(dropped.trials.size(), kept.trials.size());
    for (std::size_t i = 0; i < dropped.trials.size(); ++i) {
        // ...while the per-trial snapshots are gone, and their JSON
        // omits the "metrics" block instead of serializing it.
        EXPECT_TRUE(dropped.trials[i].output.metrics.empty());
        EXPECT_FALSE(kept.trials[i].output.metrics.empty());
        const std::string trialJson =
            dropped.trials[i].toJson().dump();
        EXPECT_EQ(trialJson.find("\"metrics\""), std::string::npos);
    }
}

TEST(PerTrialMetrics, IncompatibleWithCheckpointDir)
{
    exp::CampaignSpec spec = prefixCampaign(true, true, 1);
    spec.perTrialMetrics = false;
    spec.checkpointDir = "/tmp/uscope-test-never-created";
    EXPECT_THROW(exp::CampaignRunner{std::move(spec)},
                 std::invalid_argument);
}

} // namespace
