/**
 * @file
 * System-level property tests:
 *
 *  - Replay invariance: attacking a random program with MicroScope
 *    (random handle position, random replay count) must leave its
 *    architectural results bit-identical to an unattacked run — the
 *    paper's core premise that replays are architecturally invisible.
 *  - Determinism: identical seeds give identical experiment outputs.
 *  - Clean disarm: page tables return to their pre-attack state.
 *  - AES attack generality: the single-stepping extraction works for
 *    192- and 256-bit keys (12/14 rounds) too.
 */

#include <gtest/gtest.h>

#include <vector>

#include "attack/aes_attack.hh"
#include "attack/port_contention.hh"
#include "common/random.hh"
#include "core/microscope.hh"
#include "cpu/program.hh"
#include "os/machine.hh"

using namespace uscope;

namespace
{

/** A randomly generated victim with a replay handle inside it. */
struct RandomVictim
{
    cpu::Program program;
    VAddr handle = 0;
    VAddr data = 0;
    unsigned dataPages = 2;
};

/**
 * Random program: ALU soup + loads/stores to a private data region +
 * a bounded loop, with one access to a dedicated handle page inserted
 * at a random position.
 */
RandomVictim
makeRandomVictim(os::Kernel &kernel, os::Pid pid, Rng &rng)
{
    RandomVictim victim;
    victim.handle = kernel.allocVirtual(pid, pageSize);
    victim.data = kernel.allocVirtual(pid, victim.dataPages * pageSize);

    cpu::ProgramBuilder b;
    b.movi(30, static_cast<std::int64_t>(victim.handle));
    b.movi(31, static_cast<std::int64_t>(victim.data));
    b.movi(29, 3 + static_cast<std::int64_t>(rng.below(5)));  // loop n
    b.movi(28, 0);

    const unsigned body_len = 20 + static_cast<unsigned>(rng.below(30));
    const unsigned handle_at = static_cast<unsigned>(
        rng.below(body_len));
    b.label("loop");
    for (unsigned i = 0; i < body_len; ++i) {
        if (i == handle_at) {
            b.ld(27, 30, 0);  // the replay handle access
            continue;
        }
        const cpu::Reg rd = static_cast<cpu::Reg>(1 + rng.below(26));
        const cpu::Reg rs1 = static_cast<cpu::Reg>(1 + rng.below(26));
        const cpu::Reg rs2 = static_cast<cpu::Reg>(1 + rng.below(26));
        switch (rng.below(8)) {
          case 0:
            b.addi(rd, rs1, static_cast<std::int64_t>(rng.below(99)));
            break;
          case 1:
            b.mul(rd, rs1, rs2);
            break;
          case 2:
            b.xor_(rd, rs1, rs2);
            break;
          case 3:
            b.shri(rd, rs1, static_cast<unsigned>(rng.below(8)));
            break;
          case 4:
            b.div(rd, rs1, rs2);
            break;
          case 5:
            b.ld(rd, 31,
                 static_cast<std::int64_t>(rng.below(
                     victim.dataPages * pageSize / 8) * 8));
            break;
          case 6:
            b.st(31,
                 static_cast<std::int64_t>(rng.below(
                     victim.dataPages * pageSize / 8) * 8),
                 rs2);
            break;
          default:
            b.add(rd, rs1, rs2);
            break;
        }
    }
    b.addi(28, 28, 1);
    b.blt(28, 29, "loop");
    b.halt();

    victim.program = b.build();
    return victim;
}

struct ArchState
{
    std::vector<std::uint64_t> intRegs;
    std::vector<std::uint8_t> data;

    bool
    operator==(const ArchState &other) const
    {
        return intRegs == other.intRegs && data == other.data;
    }
};

ArchState
captureState(os::Machine &machine, os::Pid pid,
             const RandomVictim &victim)
{
    ArchState state;
    for (unsigned reg = 0; reg < cpu::numIntRegs; ++reg)
        state.intRegs.push_back(machine.core().readIntReg(
            0, static_cast<cpu::Reg>(reg)));
    state.data.resize(victim.dataPages * pageSize);
    EXPECT_TRUE(machine.kernel().readVirtual(
        pid, victim.data, state.data.data(), state.data.size()));
    return state;
}

} // namespace

class ReplayInvariance : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(ReplayInvariance, AttackedRunMatchesCleanRun)
{
    const unsigned seed = GetParam();
    Rng rng(seed * 7919 + 3);
    const std::uint64_t replays = 1 + rng.below(12);

    ArchState clean;
    ArchState attacked;
    std::uint64_t faults = 0;

    for (bool attack : {false, true}) {
        os::MachineConfig mcfg;
        mcfg.seed = 99;
        os::Machine machine(mcfg);  // identical machines
        auto &kernel = machine.kernel();
        const os::Pid pid = kernel.createProcess("victim");
        Rng victim_rng(seed * 7919 + 3);  // identical victim
        const RandomVictim victim =
            makeRandomVictim(kernel, pid, victim_rng);

        ms::Microscope scope(machine);
        if (attack) {
            ms::AttackRecipe recipe;
            recipe.victim = pid;
            recipe.replayHandle = victim.handle;
            recipe.confidence = replays;
            recipe.walkPlan = (seed % 2)
                ? ms::PageWalkPlan::longest()
                : ms::PageWalkPlan::shortest();
            scope.setRecipe(std::move(recipe));
            scope.arm();
        }

        kernel.startOnContext(pid, 0,
                              std::make_shared<const cpu::Program>(
                                  victim.program));
        ASSERT_TRUE(machine.runUntilHalted(0, 50'000'000))
            << "seed " << seed << " attack " << attack;
        if (attack) {
            scope.disarm();
            faults = kernel.faultCount(pid);
        }
        (attack ? attacked : clean) =
            captureState(machine, pid, victim);
    }

    // The attack replayed, but architecture is bit-identical.
    EXPECT_GT(faults, 0u);
    EXPECT_TRUE(clean == attacked) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReplayInvariance,
                         ::testing::Range(0u, 10u));

TEST(Determinism, IdenticalSeedsIdenticalSamples)
{
    attack::PortContentionConfig config;
    config.samples = 800;
    config.replays = 20;
    config.seed = 777;
    const auto a = attack::runPortContentionAttack(config);
    const auto b = attack::runPortContentionAttack(config);
    EXPECT_EQ(a.samples, b.samples);
    EXPECT_EQ(a.aboveThreshold, b.aboveThreshold);
    EXPECT_EQ(a.replaysDone, b.replaysDone);

    config.seed = 778;
    const auto c = attack::runPortContentionAttack(config);
    EXPECT_NE(a.samples, c.samples);  // different seed, different run
}

TEST(CleanDisarm, PageTablesRestoredAfterAbortedAttack)
{
    os::Machine machine;
    auto &kernel = machine.kernel();
    const os::Pid pid = kernel.createProcess("victim");
    const VAddr handle = kernel.allocVirtual(pid, pageSize);
    const VAddr pivot = kernel.allocVirtual(pid, pageSize);

    ms::Microscope scope(machine);
    ms::AttackRecipe recipe;
    recipe.victim = pid;
    recipe.replayHandle = handle;
    recipe.pivot = pivot;
    scope.setRecipe(std::move(recipe));

    // Arm and immediately abandon, repeatedly; the tables must come
    // back presentable every time.
    for (int i = 0; i < 5; ++i) {
        scope.arm();
        EXPECT_FALSE(kernel.pageTable(pid).isPresent(handle));
        scope.disarm();
        EXPECT_TRUE(kernel.pageTable(pid).isPresent(handle));
        EXPECT_TRUE(kernel.pageTable(pid).isPresent(pivot));
    }
}

class AesKeySizes : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(AesKeySizes, ExtractionGeneralizesToAllKeySizes)
{
    const unsigned key_bits = GetParam();
    attack::AesAttackConfig config;
    config.keyBits = key_bits;
    for (unsigned i = 0; i < 32; ++i)
        config.key[i] = static_cast<std::uint8_t>(0x42 + i * 11);
    for (unsigned i = 0; i < 16; ++i)
        config.plaintext[i] = static_cast<std::uint8_t>(0x99 - i);

    const auto result = attack::runAesExtraction(config);
    const unsigned rounds = key_bits / 32 + 6;  // 10/12/14 (§4.4)
    EXPECT_EQ(result.episodes.size(), (rounds - 1) * 4);
    EXPECT_TRUE(result.plaintextCorrect);

    // Nibble recovery stays sound regardless of key size.
    const auto nibbles = attack::recoverRound1Nibbles(result);
    const auto truth = attack::groundTruthRound1Nibbles(config);
    unsigned recovered = 0;
    for (unsigned i = 0; i < 16; ++i) {
        if (nibbles[i]) {
            ++recovered;
            EXPECT_EQ(*nibbles[i], truth[i]) << "nibble " << i;
        }
    }
    // How many nibbles survive suffix-differencing depends on line
    // collisions for the specific key/ciphertext; soundness (checked
    // above) is the hard requirement.
    EXPECT_GE(recovered, 5u);
}

INSTANTIATE_TEST_SUITE_P(KeyBits, AesKeySizes,
                         ::testing::Values(128u, 192u, 256u));
