/**
 * @file
 * Unit tests for src/os: kernel process management, virtual memory
 * services, SGX enclave semantics (opacity + AEX), the page-fault
 * path with the module trampoline, and the costed privileged
 * operations the MicroScope module builds on.
 */

#include <gtest/gtest.h>

#include <vector>

#include "cpu/program.hh"
#include "os/machine.hh"

using namespace uscope;

namespace
{

std::shared_ptr<const cpu::Program>
share(cpu::Program program)
{
    return std::make_shared<const cpu::Program>(std::move(program));
}

/** Records every fault offered to it; optionally claims them. */
class RecordingModule : public os::FaultModule
{
  public:
    explicit RecordingModule(bool claim = false) : claim_(claim) {}

    bool
    onPageFault(const os::PageFaultEvent &event) override
    {
        events.push_back(event);
        return claim_;
    }

    std::vector<os::PageFaultEvent> events;

  private:
    bool claim_;
};

} // namespace

TEST(KernelTest, ProcessesGetDistinctPcids)
{
    os::Machine machine;
    const os::Pid a = machine.kernel().createProcess("a");
    const os::Pid b = machine.kernel().createProcess("b");
    EXPECT_NE(a, b);
    EXPECT_NE(machine.kernel().pcidOf(a), machine.kernel().pcidOf(b));
    EXPECT_NE(machine.kernel().pcBiasOf(a),
              machine.kernel().pcBiasOf(b));
}

TEST(KernelTest, AllocVirtualSeparatesRegionsWithGuards)
{
    os::Machine machine;
    auto &kernel = machine.kernel();
    const os::Pid pid = kernel.createProcess("p");
    const VAddr a = kernel.allocVirtual(pid, pageSize);
    const VAddr b = kernel.allocVirtual(pid, pageSize);
    // Distinct pages with an unmapped guard between them — replay
    // handle and pivot can never share a page by accident.
    EXPECT_GE(pageNumber(b) - pageNumber(a), 2u);
    EXPECT_FALSE(kernel.translate(pid, a + pageSize).has_value());
}

TEST(KernelTest, VirtualReadWriteRoundTrip)
{
    os::Machine machine;
    auto &kernel = machine.kernel();
    const os::Pid pid = kernel.createProcess("p");
    const VAddr va = kernel.allocVirtual(pid, 3 * pageSize);

    std::vector<std::uint8_t> data(2 * pageSize + 100);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i);
    ASSERT_TRUE(kernel.writeVirtual(pid, va + 50, data.data(),
                                    data.size()));
    std::vector<std::uint8_t> back(data.size());
    ASSERT_TRUE(kernel.readVirtual(pid, va + 50, back.data(),
                                   back.size()));
    EXPECT_EQ(data, back);
}

TEST(KernelTest, EnclaveMemoryIsOpaqueToTheKernel)
{
    os::Machine machine;
    auto &kernel = machine.kernel();
    const os::Pid pid = kernel.createProcess("p");
    const VAddr va = kernel.allocVirtual(pid, 2 * pageSize);

    const std::uint64_t secret = 0x5EC12E7;
    ASSERT_TRUE(kernel.writeVirtual(pid, va, &secret, 8));
    kernel.declareEnclave(pid, va, pageSize);

    // §2.3: the supervisor cannot read or write enclave memory...
    std::uint64_t out = 0;
    EXPECT_FALSE(kernel.readVirtual(pid, va, &out, 8));
    EXPECT_FALSE(kernel.writeVirtual(pid, va, &out, 8));
    // ...but can still manage (and read) adjacent non-enclave pages.
    EXPECT_TRUE(kernel.readVirtual(pid, va + pageSize, &out, 8));
    // And can still manipulate the enclave page's *translation*.
    EXPECT_TRUE(kernel.translate(pid, va).has_value());
    EXPECT_NO_THROW(kernel.pageTable(pid).setPresent(va, false));
}

TEST(KernelTest, EnclaveFaultReportsOnlyVpn)
{
    os::Machine machine;
    auto &kernel = machine.kernel();
    const os::Pid pid = kernel.createProcess("p");
    const VAddr plain = kernel.allocVirtual(pid, pageSize);
    const VAddr enclave = kernel.allocVirtual(pid, pageSize);
    kernel.declareEnclave(pid, enclave, pageSize);

    kernel.pageTable(pid).setPresent(plain, false);
    kernel.pageTable(pid).setPresent(enclave, false);

    RecordingModule module;
    kernel.registerModule(&module);

    cpu::ProgramBuilder b;
    b.movi(1, static_cast<std::int64_t>(plain))
        .movi(2, static_cast<std::int64_t>(enclave))
        .ld(3, 1, 0x123)   // faults at plain+0x123
        .ld(4, 2, 0x456)   // faults inside the enclave
        .halt();
    kernel.startOnContext(pid, 0, share(b.build()));
    ASSERT_TRUE(machine.runUntilHalted(0, 1'000'000));

    ASSERT_EQ(module.events.size(), 2u);
    // Outside an enclave the full VA is visible...
    EXPECT_EQ(module.events[0].va, plain + 0x123);
    EXPECT_FALSE(module.events[0].inEnclave);
    // ...inside, AEX masks it to the page base (§2.3).
    EXPECT_EQ(module.events[1].va, enclave);
    EXPECT_TRUE(module.events[1].inEnclave);
}

TEST(KernelTest, ModuleClaimSkipsDefaultHandling)
{
    os::Machine machine;
    auto &kernel = machine.kernel();
    const os::Pid pid = kernel.createProcess("p");
    const VAddr va = kernel.allocVirtual(pid, pageSize);
    kernel.pageTable(pid).setPresent(va, false);

    // A claiming module that does nothing: the present bit must stay
    // clear (this is how MicroScope keeps the victim replaying).
    class ClaimAndCount : public os::FaultModule
    {
      public:
        explicit ClaimAndCount(os::Kernel &kernel, VAddr va)
            : kernel_(kernel), va_(va) {}
        bool
        onPageFault(const os::PageFaultEvent &event) override
        {
            ++count;
            if (count >= 5) {
                kernel_.setPresent(event.pid, va_, true);
                kernel_.invlpg(event.pid, va_);
            }
            return true;
        }
        unsigned count = 0;

      private:
        os::Kernel &kernel_;
        VAddr va_;
    };

    ClaimAndCount module(kernel, va);
    kernel.registerModule(&module);

    cpu::ProgramBuilder b;
    b.movi(1, static_cast<std::int64_t>(va)).ld(2, 1, 0).halt();
    kernel.startOnContext(pid, 0, share(b.build()));
    ASSERT_TRUE(machine.runUntilHalted(0, 1'000'000));
    EXPECT_EQ(module.count, 5u);
}

TEST(KernelTest, HandlerCostStallsFaultingContextOnly)
{
    os::Machine machine;
    auto &kernel = machine.kernel();
    const os::Pid pid = kernel.createProcess("victim");
    const os::Pid other = kernel.createProcess("other");
    const VAddr va = kernel.allocVirtual(pid, pageSize);
    kernel.pageTable(pid).setPresent(va, false);

    cpu::ProgramBuilder victim;
    victim.movi(1, static_cast<std::int64_t>(va)).ld(2, 1, 0).halt();
    // The sibling counts while the victim is stuck in the handler.
    cpu::ProgramBuilder counter;
    counter.movi(1, 0)
        .movi(2, 1'000'000)
        .label("loop")
        .addi(1, 1, 1)
        .blt(1, 2, "loop")
        .halt();
    kernel.startOnContext(pid, 0, share(victim.build()));
    kernel.startOnContext(other, 1, share(counter.build()));

    ASSERT_TRUE(machine.runUntilHalted(0, 1'000'000));
    // The victim was stalled for (at least) the base handler cost.
    EXPECT_GE(machine.core().stats(0).stallCycles,
              kernel.costs().faultBase);
    // The sibling kept running: its count is well past zero.
    EXPECT_GT(machine.core().readIntReg(1, 1), 1000u);
    EXPECT_GE(kernel.handlerCycles(), kernel.costs().faultBase);
}

TEST(KernelTest, TimedProbeMatchesLevels)
{
    os::Machine machine;
    auto &kernel = machine.kernel();
    const os::Pid pid = kernel.createProcess("p");
    const VAddr va = kernel.allocVirtual(pid, pageSize);
    const PAddr pa = *kernel.translate(pid, va);

    kernel.flushPhysLine(pa);
    const os::ProbeResult miss = kernel.timedProbePhys(pa);
    EXPECT_EQ(miss.level, mem::HitLevel::Dram);
    EXPECT_GT(miss.latency, 300u);  // the Figure-11 "memory" band

    const os::ProbeResult hit = kernel.timedProbePhys(pa);
    EXPECT_EQ(hit.level, mem::HitLevel::L1);
    EXPECT_LT(hit.latency, 70u);    // the Figure-11 "L1" band
}

TEST(KernelTest, PrimeRangeEvictsEveryLine)
{
    os::Machine machine;
    auto &kernel = machine.kernel();
    const os::Pid pid = kernel.createProcess("p");
    const VAddr va = kernel.allocVirtual(pid, pageSize);
    const PAddr pa = *kernel.translate(pid, va);

    for (unsigned line = 0; line < 16; ++line)
        machine.hierarchy().access(pa + line * lineSize);
    kernel.primeRange(pa, 16 * lineSize);
    for (unsigned line = 0; line < 16; ++line)
        EXPECT_EQ(machine.hierarchy().peekLevel(pa + line * lineSize),
                  mem::HitLevel::Dram);
}

TEST(KernelTest, PrefillPwcControlsWalkLength)
{
    os::Machine machine;
    auto &kernel = machine.kernel();
    const os::Pid pid = kernel.createProcess("p");
    const VAddr va = kernel.allocVirtual(pid, pageSize);

    for (unsigned fetch_levels = 1; fetch_levels <= 4; ++fetch_levels) {
        kernel.invlpg(pid, va);
        kernel.prefillPwc(pid, va, fetch_levels);
        const auto result = machine.mmu().translate(
            va, kernel.pcidOf(pid), kernel.pageTable(pid).root());
        ASSERT_TRUE(result.walked);
        EXPECT_EQ(result.walk.ptFetches, fetch_levels);
    }
}

TEST(KernelTest, FlushTranslationEntriesEvictsPtLines)
{
    os::Machine machine;
    auto &kernel = machine.kernel();
    const os::Pid pid = kernel.createProcess("p");
    const VAddr va = kernel.allocVirtual(pid, pageSize);

    // Warm the PT entry lines via a walk.
    kernel.invlpg(pid, va);
    machine.mmu().flushPwcAll();
    machine.mmu().translate(va, kernel.pcidOf(pid),
                            kernel.pageTable(pid).root());

    const auto walk = kernel.pageTable(pid).softwareWalk(va);
    ASSERT_EQ(walk.levelsValid, 4u);
    for (unsigned lvl = 0; lvl < 4; ++lvl)
        ASSERT_NE(machine.hierarchy().peekLevel(walk.entryAddrs[lvl]),
                  mem::HitLevel::Dram);

    kernel.flushTranslationEntries(pid, va);
    for (unsigned lvl = 0; lvl < 4; ++lvl)
        EXPECT_EQ(machine.hierarchy().peekLevel(walk.entryAddrs[lvl]),
                  mem::HitLevel::Dram);
}

TEST(KernelTest, DemandAllocOnUnmappedFault)
{
    os::Machine machine;
    auto &kernel = machine.kernel();
    const os::Pid pid = kernel.createProcess("p");
    // Touch a virtual page the process never mapped: the default
    // handler demand-allocates it (heap growth).
    const VAddr wild = 0x7777000;

    cpu::ProgramBuilder b;
    b.movi(1, static_cast<std::int64_t>(wild))
        .movi(2, 0x77)
        .st(1, 0, 2)
        .ld(3, 1, 0)
        .halt();
    kernel.startOnContext(pid, 0, share(b.build()));
    ASSERT_TRUE(machine.runUntilHalted(0, 1'000'000));
    EXPECT_EQ(machine.core().readIntReg(0, 3), 0x77u);
    EXPECT_TRUE(kernel.translate(pid, wild).has_value());
}
