/**
 * @file
 * Tests for src/exp: the campaign runner's determinism contract
 * (N-worker == 1-worker, bit for bit), its robustness contract
 * (throwing / over-budget trials are results, not crashes), the
 * statistics merge operations it aggregates through, and the JSON
 * export layer.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "common/logging.hh"
#include "common/random.hh"
#include "common/stats.hh"
#include "core/microscope.hh"
#include "cpu/program.hh"
#include "exp/campaign.hh"
#include "exp/checkpoint.hh"
#include "exp/json.hh"
#include "exp/result_sink.hh"
#include "os/machine.hh"

using namespace uscope;

// ---------------------------------------------------------------------
// Stats merges.
// ---------------------------------------------------------------------

TEST(SummaryMerge, MatchesSingleStreamAccumulation)
{
    Rng rng(7);
    std::vector<double> samples;
    for (int i = 0; i < 1000; ++i)
        samples.push_back(rng.uniform() * 100.0 - 20.0);

    Summary whole;
    for (double s : samples)
        whole.add(s);

    // Split into 4 uneven shards, then merge.
    Summary shards[4];
    for (std::size_t i = 0; i < samples.size(); ++i)
        shards[(i * i) % 4].add(samples[i]);
    Summary merged;
    for (const Summary &shard : shards)
        merged.merge(shard);

    EXPECT_EQ(merged.count(), whole.count());
    EXPECT_EQ(merged.min(), whole.min());
    EXPECT_EQ(merged.max(), whole.max());
    EXPECT_NEAR(merged.mean(), whole.mean(), 1e-9);
    EXPECT_NEAR(merged.variance(), whole.variance(), 1e-6);
}

TEST(SummaryMerge, EmptySidesAreIdentity)
{
    Summary a;
    a.add(3.0);
    a.add(5.0);

    Summary b;
    b.merge(a);  // empty.merge(x) == x
    EXPECT_EQ(b.count(), 2u);
    EXPECT_EQ(b.mean(), a.mean());
    EXPECT_EQ(b.min(), 3.0);

    Summary empty;
    a.merge(empty);  // x.merge(empty) == x
    EXPECT_EQ(a.count(), 2u);
    EXPECT_EQ(a.mean(), 4.0);
}

TEST(HistogramMerge, BucketsRawAndSummaryFold)
{
    Histogram a(0, 10, 5);
    Histogram b(0, 10, 5);
    a.add(1.0);
    a.add(11.0);  // overflow
    b.add(1.5);
    b.add(-2.0);  // underflow
    b.add(9.0);

    a.merge(b);
    EXPECT_EQ(a.count(), 5u);
    EXPECT_EQ(a.buckets()[0], 2u);  // 1.0 and 1.5
    EXPECT_EQ(a.buckets()[4], 1u);  // 9.0
    EXPECT_EQ(a.underflow(), 1u);
    EXPECT_EQ(a.overflow(), 1u);
    EXPECT_EQ(a.samples().size(), 5u);
    EXPECT_EQ(a.summary().min(), -2.0);
    EXPECT_EQ(a.summary().max(), 11.0);
}

TEST(HistogramMerge, ShapeMismatchIsFatal)
{
    Histogram a(0, 10, 5);
    Histogram b(0, 20, 5);
    EXPECT_THROW(a.merge(b), SimFatal);
}

TEST(MicroscopeStatsMerge, FieldsAdd)
{
    ms::MicroscopeStats a;
    a.handleFaults = 3;
    a.episodes = 1;
    ms::MicroscopeStats b;
    b.handleFaults = 2;
    b.totalReplays = 40;
    a.merge(b);
    EXPECT_EQ(a.handleFaults, 5u);
    EXPECT_EQ(a.episodes, 1u);
    EXPECT_EQ(a.totalReplays, 40u);
}

// ---------------------------------------------------------------------
// JSON.
// ---------------------------------------------------------------------

TEST(Json, ScalarsArraysObjects)
{
    exp::json::Value v = exp::json::Value::object()
                             .set("name", "fig10")
                             .set("n", std::uint64_t{10000})
                             .set("ratio", 0.5)
                             .set("ok", true)
                             .set("none", exp::json::Value());
    v.set("list",
          exp::json::Value::array().push(1).push(2).push("three"));
    EXPECT_EQ(v.dump(),
              "{\"name\":\"fig10\",\"n\":10000,\"ratio\":0.5,"
              "\"ok\":true,\"none\":null,\"list\":[1,2,\"three\"]}");
}

TEST(Json, EscapingAndOverwrite)
{
    exp::json::Value v = exp::json::Value::object();
    v.set("k", "a\"b\\c\nd");
    v.set("k", "replaced\t");
    EXPECT_EQ(v.dump(), "{\"k\":\"replaced\\t\"}");
    EXPECT_EQ(exp::json::Value::escape("\x01"), "\\u0001");
}

TEST(Json, NonFiniteDoublesAreNull)
{
    exp::json::Value v = exp::json::Value::array();
    v.push(std::numeric_limits<double>::quiet_NaN());
    v.push(std::numeric_limits<double>::infinity());
    EXPECT_EQ(v.dump(), "[null,null]");
}

TEST(Json, HistogramExportCapsRawSamples)
{
    Histogram hist(0, 100, 10);
    for (int i = 0; i < 100; ++i)
        hist.add(static_cast<double>(i));

    // Under the cap: every sample, no drop accounting needed.
    const exp::json::Value full = exp::toJson(hist, 1000);
    EXPECT_NE(full.dump().find("\"samples\""), std::string::npos);
    EXPECT_NE(full.dump().find("\"samples_dropped\":0"),
              std::string::npos);

    // Over the cap: deterministic stride sampling, drops reported.
    const exp::json::Value capped = exp::toJson(hist, 10);
    const std::string text = capped.dump();
    EXPECT_NE(text.find("\"samples_total\":100"), std::string::npos);
    EXPECT_NE(text.find("\"samples_dropped\":90"), std::string::npos);
    // Stride 10 keeps 0, 10, 20, ...
    EXPECT_NE(text.find("\"samples\":[0,10,20"), std::string::npos);
    // Same histogram, same cap: bit-identical export.
    EXPECT_EQ(text, exp::toJson(hist, 10).dump());

    // keep_raw=false histograms export no samples key at all.
    Histogram binned(0, 100, 10, /*keep_raw=*/false);
    binned.add(5.0);
    EXPECT_EQ(exp::toJson(binned).dump().find("\"samples\""),
              std::string::npos);
}

// ---------------------------------------------------------------------
// Seed derivation.
// ---------------------------------------------------------------------

TEST(TrialSeed, DeterministicAndDecorrelated)
{
    EXPECT_EQ(exp::deriveTrialSeed(42, 0), exp::deriveTrialSeed(42, 0));
    EXPECT_NE(exp::deriveTrialSeed(42, 0), exp::deriveTrialSeed(42, 1));
    EXPECT_NE(exp::deriveTrialSeed(42, 0), exp::deriveTrialSeed(43, 0));
    // Adjacent trials must not get adjacent (correlated) seeds.
    const auto a = exp::deriveTrialSeed(42, 5);
    const auto b = exp::deriveTrialSeed(42, 6);
    EXPECT_GT(a > b ? a - b : b - a, 1000u);
}

// ---------------------------------------------------------------------
// The campaign runner.
// ---------------------------------------------------------------------

namespace
{

/** A seed-dependent synthetic trial: cheap but non-trivial. */
exp::CampaignSpec
syntheticSpec(std::size_t trials, unsigned workers)
{
    exp::CampaignSpec spec;
    spec.name = "synthetic";
    spec.trials = trials;
    spec.masterSeed = 1234;
    spec.workers = workers;
    spec.body = [](const exp::TrialContext &ctx) {
        Rng rng(ctx.seed);
        exp::TrialOutput out;
        double acc = 0;
        for (int i = 0; i < 257; ++i) {
            const double sample = rng.uniform() * 1000.0;
            out.metric.add(sample);
            acc += sample;
        }
        out.simCycles = 1000 + rng.below(1000);
        out.scope.totalReplays = ctx.index;
        out.payload = exp::json::Value::object()
                          .set("acc", acc)
                          .set("first", rng.next());
        return out;
    };
    return spec;
}

} // namespace

TEST(Campaign, AggregateBitIdenticalAcrossWorkerCounts)
{
    const exp::CampaignResult serial =
        exp::runCampaign(syntheticSpec(64, 1));
    const exp::CampaignResult parallel =
        exp::runCampaign(syntheticSpec(64, 4));

    EXPECT_EQ(serial.workers, 1u);
    EXPECT_EQ(parallel.workers, 4u);
    EXPECT_EQ(serial.aggregate.ok, 64u);
    EXPECT_EQ(parallel.aggregate.ok, 64u);

    // Bit-exact double comparisons on purpose: the contract is
    // bit-identical aggregation, not "close".
    EXPECT_EQ(serial.aggregate.metric.count(),
              parallel.aggregate.metric.count());
    EXPECT_EQ(serial.aggregate.metric.mean(),
              parallel.aggregate.metric.mean());
    EXPECT_EQ(serial.aggregate.metric.variance(),
              parallel.aggregate.metric.variance());
    EXPECT_EQ(serial.aggregate.metric.min(),
              parallel.aggregate.metric.min());
    EXPECT_EQ(serial.aggregate.metric.max(),
              parallel.aggregate.metric.max());
    EXPECT_EQ(serial.aggregate.simCycles, parallel.aggregate.simCycles);
    EXPECT_EQ(serial.aggregate.scope.totalReplays,
              parallel.aggregate.scope.totalReplays);

    // Per-trial results (wall clock aside) are identical too.
    ASSERT_EQ(serial.trials.size(), parallel.trials.size());
    for (std::size_t i = 0; i < serial.trials.size(); ++i) {
        EXPECT_EQ(serial.trials[i].seed, parallel.trials[i].seed);
        EXPECT_EQ(serial.trials[i].output.payload.dump(),
                  parallel.trials[i].output.payload.dump());
    }

    // And the exported aggregate JSON matches byte for byte.
    EXPECT_EQ(serial.aggregate.toJson().dump(),
              parallel.aggregate.toJson().dump());
}

TEST(Campaign, ThrowingTrialIsRecordedNotFatal)
{
    exp::CampaignSpec spec = syntheticSpec(8, 3);
    auto inner = spec.body;
    spec.body = [inner](const exp::TrialContext &ctx) {
        if (ctx.index == 3)
            throw std::runtime_error("injected trial failure");
        if (ctx.index == 5)
            throw 17;  // non-std::exception
        return inner(ctx);
    };

    const exp::CampaignResult result = exp::runCampaign(std::move(spec));
    EXPECT_EQ(result.aggregate.ok, 6u);
    EXPECT_EQ(result.aggregate.failed, 2u);
    EXPECT_EQ(result.aggregate.timedOut, 0u);
    EXPECT_EQ(result.trials[3].status, exp::TrialStatus::Failed);
    EXPECT_EQ(result.trials[3].error, "injected trial failure");
    EXPECT_EQ(result.trials[5].error, "unknown exception");
    // The failed trials contribute nothing to the aggregate metric.
    EXPECT_EQ(result.aggregate.metric.count(), 6u * 257u);
}

TEST(Campaign, CycleBudgetTimesOutAsResult)
{
    exp::CampaignSpec spec = syntheticSpec(6, 2);
    spec.cycleBudget = 5000;
    auto inner = spec.body;
    spec.body = [inner](const exp::TrialContext &ctx) {
        if (ctx.index == 1) {
            // Cooperative check mid-trial: throws TrialTimeout.
            ctx.checkBudget(ctx.cycleBudget + 1);
        }
        exp::TrialOutput out = inner(ctx);
        if (ctx.index == 4)
            out.simCycles = 1'000'000;  // blew the budget, post hoc
        return out;
    };

    const exp::CampaignResult result = exp::runCampaign(std::move(spec));
    EXPECT_EQ(result.aggregate.timedOut, 2u);
    EXPECT_EQ(result.aggregate.ok, 4u);
    EXPECT_EQ(result.trials[1].status, exp::TrialStatus::TimedOut);
    EXPECT_EQ(result.trials[4].status, exp::TrialStatus::TimedOut);
    // The post-hoc case still carries its (partial) output.
    EXPECT_EQ(result.trials[4].output.simCycles, 1'000'000u);
}

TEST(Campaign, ReducerRunsInIndexOrderAndProgressIsMonotonic)
{
    exp::CampaignSpec spec = syntheticSpec(32, 4);
    std::vector<std::size_t> reduced;
    spec.reduce = [&](const exp::TrialResult &trial) {
        reduced.push_back(trial.index);
    };
    std::vector<std::size_t> progress;
    spec.progress = [&](std::size_t done, std::size_t total) {
        EXPECT_EQ(total, 32u);
        progress.push_back(done);
    };

    exp::runCampaign(std::move(spec));
    ASSERT_EQ(reduced.size(), 32u);
    for (std::size_t i = 0; i < reduced.size(); ++i)
        EXPECT_EQ(reduced[i], i);
    ASSERT_EQ(progress.size(), 32u);
    for (std::size_t i = 0; i < progress.size(); ++i)
        EXPECT_EQ(progress[i], i + 1);
}

TEST(Campaign, RealMachineTrialsAreDeterministic)
{
    // Each trial owns a full simulated Machine and runs a small
    // program; the simulated cycle count is the metric.
    const auto make = [](unsigned workers) {
        exp::CampaignSpec spec;
        spec.name = "machine-campaign";
        spec.trials = 4;
        spec.masterSeed = 9;
        spec.workers = workers;
        spec.cycleBudget = 1'000'000;
        spec.body = [](const exp::TrialContext &ctx) {
            os::Machine machine(ctx.machine);
            auto &kernel = machine.kernel();
            const os::Pid pid = kernel.createProcess("worker-victim");
            const VAddr page = kernel.allocVirtual(pid, pageSize);

            cpu::ProgramBuilder b;
            b.movi(1, static_cast<std::int64_t>(page));
            for (unsigned i = 0; i <= ctx.index; ++i)
                b.ld(2, 1, static_cast<std::int64_t>(i * lineSize));
            b.halt();
            kernel.startOnContext(
                pid, 0,
                std::make_shared<const cpu::Program>(b.build()));
            if (!machine.runUntilHalted(0, ctx.cycleBudget))
                throw exp::TrialTimeout("victim never halted");

            exp::TrialOutput out;
            out.simCycles = machine.cycle();
            out.metric.add(static_cast<double>(machine.cycle()));
            return out;
        };
        return spec;
    };

    const exp::CampaignResult serial = exp::runCampaign(make(1));
    const exp::CampaignResult parallel = exp::runCampaign(make(2));
    EXPECT_EQ(serial.aggregate.ok, 4u);
    EXPECT_EQ(serial.aggregate.simCycles, parallel.aggregate.simCycles);
    EXPECT_EQ(serial.aggregate.metric.mean(),
              parallel.aggregate.metric.mean());
}

TEST(Campaign, MachineFactorySeedStamping)
{
    exp::CampaignSpec spec;
    spec.trials = 3;
    spec.masterSeed = 77;
    spec.workers = 1;
    std::vector<std::uint64_t> seeds;
    spec.machineFactory = [](const exp::TrialContext &) {
        return os::MachineConfig{};  // forgot to seed — runner stamps it
    };
    spec.body = [&](const exp::TrialContext &ctx) {
        seeds.push_back(ctx.machine.seed);
        return exp::TrialOutput{};
    };
    exp::runCampaign(std::move(spec));
    ASSERT_EQ(seeds.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_EQ(seeds[i], exp::deriveTrialSeed(77, i));
}

TEST(Campaign, MachineFactorySettingDefaultSeedValueIsHonoured)
{
    // Regression: a factory that *deliberately* chooses the default
    // seed value (42) used to be indistinguishable from one that never
    // seeded, and was silently re-stamped with the trial seed.
    exp::CampaignSpec spec;
    spec.trials = 3;
    spec.masterSeed = 77;
    spec.workers = 1;
    std::vector<std::uint64_t> seeds;
    spec.machineFactory = [](const exp::TrialContext &) {
        os::MachineConfig config;
        config.seed = 42;  // deliberately the default value
        return config;
    };
    spec.body = [&](const exp::TrialContext &ctx) {
        seeds.push_back(ctx.machine.seed);
        return exp::TrialOutput{};
    };
    exp::runCampaign(std::move(spec));
    ASSERT_EQ(seeds.size(), 3u);
    for (std::uint64_t seed : seeds)
        EXPECT_EQ(seed, 42u);
}

TEST(Seed, TracksExplicitAssignment)
{
    os::Seed seed;
    EXPECT_FALSE(seed.explicitlySet);
    EXPECT_EQ(static_cast<std::uint64_t>(seed), 42u);

    seed = 42;  // assigning the default value still counts as "set"
    EXPECT_TRUE(seed.explicitlySet);

    os::MachineConfig config;
    EXPECT_FALSE(config.seed.explicitlySet);
    config.seed = 7;
    EXPECT_TRUE(config.seed.explicitlySet);
    // Arithmetic through the implicit conversion keeps working.
    EXPECT_EQ(config.seed * 3 + 1, 22u);
}

TEST(TrialContext, CheckBudgetBoundaryIsInclusive)
{
    exp::TrialContext ctx;
    ctx.cycleBudget = 100;
    // The budget is inclusive: exactly-budget trials are admitted,
    // the first cycle past it times out.
    EXPECT_NO_THROW(ctx.checkBudget(100));
    EXPECT_THROW(ctx.checkBudget(101), exp::TrialTimeout);

    ctx.cycleBudget = 0;  // unbounded
    EXPECT_NO_THROW(ctx.checkBudget(~Cycles{0}));
}

TEST(Campaign, ExactBudgetAdmittedOneCycleOverTimesOut)
{
    // Trial 0 consumes exactly the budget (fast-forward must clamp its
    // clock jumps to the run() limit, not overshoot); trial 1 runs one
    // cycle past it.
    exp::CampaignSpec spec;
    spec.trials = 2;
    spec.masterSeed = 5;
    spec.workers = 1;
    spec.cycleBudget = 5000;
    spec.body = [](const exp::TrialContext &ctx) {
        os::Machine machine(ctx.machine);
        machine.run(ctx.cycleBudget + ctx.index);
        exp::TrialOutput out;
        out.simCycles = machine.cycle();
        return out;
    };
    const exp::CampaignResult result = exp::runCampaign(std::move(spec));
    ASSERT_EQ(result.trials.size(), 2u);
    EXPECT_EQ(result.trials[0].output.simCycles, 5000u);
    EXPECT_EQ(result.trials[0].status, exp::TrialStatus::Ok);
    EXPECT_EQ(result.trials[1].output.simCycles, 5001u);
    EXPECT_EQ(result.trials[1].status, exp::TrialStatus::TimedOut);
}

TEST(ResultSink, AnnotatesNonFiniteValuesInDumps)
{
    exp::CampaignSpec spec;
    spec.name = "nonfinite-campaign";
    spec.trials = 1;
    spec.workers = 1;
    spec.body = [](const exp::TrialContext &) {
        exp::TrialOutput out;
        out.payload = exp::json::Value::object().set(
            "bad", std::numeric_limits<double>::quiet_NaN());
        return out;
    };
    const exp::CampaignResult result = exp::runCampaign(std::move(spec));

    std::ostringstream os;
    exp::JsonStreamSink sink(os, /*include_trials=*/true, /*indent=*/-1);
    sink.consume(result);
    const std::string dumped = os.str();
    EXPECT_NE(dumped.find("\"bad\":null"), std::string::npos);
    EXPECT_NE(dumped.find("\"non_finite_nulled\":1"), std::string::npos);
}

TEST(Campaign, MetricSnapshotsFlowIntoResults)
{
    const auto make = [](unsigned workers) {
        exp::CampaignSpec spec;
        spec.name = "metrics-campaign";
        spec.trials = 6;
        spec.masterSeed = 3;
        spec.workers = workers;
        spec.body = [](const exp::TrialContext &ctx) {
            obs::MetricRegistry registry;
            registry.counter("trial.widgets").set(ctx.index + 1);
            registry.latency("trial.latency")
                .record(static_cast<double>(ctx.index) * 10.0);
            exp::TrialOutput out;
            out.metrics = registry.snapshot();
            return out;
        };
        return spec;
    };

    const exp::CampaignResult result = exp::runCampaign(make(2));
    // 1+2+...+6 across the index-ordered merge.
    const obs::MetricValue *widgets =
        result.aggregate.metrics.find("trial.widgets");
    ASSERT_NE(widgets, nullptr);
    EXPECT_EQ(widgets->counter, 21u);
    EXPECT_EQ(result.aggregate.metrics.find("trial.latency")
                  ->latency.count(),
              6u);

    // Metrics appear in both per-trial and aggregate JSON.
    EXPECT_NE(result.trials[0].toJson().dump().find(
                  "\"metrics\":{\"trial.latency\""),
              std::string::npos);
    EXPECT_NE(result.aggregate.toJson().dump().find(
                  "\"trial.widgets\":21"),
              std::string::npos);

    // And aggregate identically regardless of worker count.
    EXPECT_EQ(result.aggregate.metrics.toJson().dump(),
              exp::runCampaign(make(1)).aggregate.metrics.toJson().dump());
}

// ---------------------------------------------------------------------
// Result sinks.
// ---------------------------------------------------------------------

TEST(ResultSink, JsonFileRoundTrip)
{
    exp::CampaignResult result = exp::runCampaign(syntheticSpec(4, 2));
    exp::JsonFileSink sink(testing::TempDir(), /*include_trials=*/true);
    sink.consume(result);
    ASSERT_FALSE(sink.lastPath().empty());

    std::FILE *f = std::fopen(sink.lastPath().c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::string text(1 << 16, '\0');
    text.resize(std::fread(text.data(), 1, text.size(), f));
    std::fclose(f);

    EXPECT_NE(text.find("\"campaign\": \"synthetic\""),
              std::string::npos);
    EXPECT_NE(text.find("\"trial_results\""), std::string::npos);
    EXPECT_NE(text.find("\"sim_cycles_per_second\""), std::string::npos);
}

TEST(ResultSink, StreamSinkEmitsParseableShape)
{
    exp::CampaignResult result = exp::runCampaign(syntheticSpec(2, 1));
    std::ostringstream os;
    exp::JsonStreamSink sink(os, /*include_trials=*/false, -1);
    sink.consume(result);
    const std::string text = os.str();
    EXPECT_EQ(text.front(), '{');
    EXPECT_EQ(text[text.size() - 2], '}');  // "...}\n"
    EXPECT_EQ(text.find("trial_results"), std::string::npos);
}

// ---------------------------------------------------------------------
// Spec validation.
// ---------------------------------------------------------------------

TEST(Campaign, SpecWithoutBodyThrows)
{
    exp::CampaignSpec spec;
    spec.trials = 4;
    EXPECT_THROW(exp::runCampaign(std::move(spec)),
                 std::invalid_argument);
}

TEST(Campaign, SpecWithZeroTrialsThrows)
{
    exp::CampaignSpec spec = syntheticSpec(1, 1);
    spec.trials = 0;
    EXPECT_THROW(exp::runCampaign(std::move(spec)),
                 std::invalid_argument);
}

// ---------------------------------------------------------------------
// Retry policy.
// ---------------------------------------------------------------------

TEST(RetrySeed, AttemptZeroIsTheTrialSeed)
{
    EXPECT_EQ(exp::deriveRetrySeed(42, 7, 0),
              exp::deriveTrialSeed(42, 7));
    // Attempts get decorrelated fresh seeds, deterministically.
    EXPECT_NE(exp::deriveRetrySeed(42, 7, 1),
              exp::deriveRetrySeed(42, 7, 0));
    EXPECT_NE(exp::deriveRetrySeed(42, 7, 1),
              exp::deriveRetrySeed(42, 7, 2));
    EXPECT_EQ(exp::deriveRetrySeed(42, 7, 3),
              exp::deriveRetrySeed(42, 7, 3));
}

namespace
{

/** syntheticSpec whose index-2 trial fails once and whose index-4
 *  trial always fails — the retry-policy fixture. */
exp::CampaignSpec
flakySpec(std::size_t trials, unsigned workers, unsigned max_retries)
{
    exp::CampaignSpec spec = syntheticSpec(trials, workers);
    spec.maxRetries = max_retries;
    auto inner = spec.body;
    const std::uint64_t master = spec.masterSeed;
    spec.body = [inner, master](const exp::TrialContext &ctx) {
        const bool first_attempt =
            ctx.seed == exp::deriveRetrySeed(master, ctx.index, 0);
        if (ctx.index == 2 && first_attempt)
            throw std::runtime_error("flaky once");
        if (ctx.index == 4)
            throw std::runtime_error("always broken");
        return inner(ctx);
    };
    return spec;
}

} // namespace

TEST(Campaign, FailingTrialRetriesWithDerivedSeeds)
{
    const exp::CampaignResult result =
        exp::runCampaign(flakySpec(6, 3, 2));

    EXPECT_EQ(result.aggregate.retried, 1u);
    EXPECT_EQ(result.aggregate.failed, 1u);
    EXPECT_EQ(result.aggregate.ok, 4u);

    const exp::TrialResult &flaky = result.trials[2];
    EXPECT_EQ(flaky.status, exp::TrialStatus::Retried);
    EXPECT_EQ(flaky.attempts, 2u);
    // The successful attempt's seed is recorded, and the failure text
    // is kept for the record.
    EXPECT_EQ(flaky.seed, exp::deriveRetrySeed(1234, 2, 1));
    EXPECT_EQ(flaky.error, "flaky once");
    EXPECT_GT(flaky.output.metric.count(), 0u);

    const exp::TrialResult &broken = result.trials[4];
    EXPECT_EQ(broken.status, exp::TrialStatus::Failed);
    EXPECT_EQ(broken.attempts, 3u);  // 1 original + 2 retries
    EXPECT_EQ(broken.error, "always broken");

    // Retried trials contribute to the aggregate; Failed ones do not.
    EXPECT_EQ(result.aggregate.metric.count(), 5u * 257u);

    // The whole retry history is a pure function of the seeds, so the
    // campaign fingerprint is worker-count invariant.
    const exp::CampaignResult serial =
        exp::runCampaign(flakySpec(6, 1, 2));
    EXPECT_EQ(result.aggregate.toJson().dump(),
              serial.aggregate.toJson().dump());
}

TEST(Campaign, TimedOutIsNeverRetried)
{
    exp::CampaignSpec spec = syntheticSpec(3, 1);
    spec.cycleBudget = 100;
    spec.maxRetries = 5;
    unsigned invocations = 0;
    spec.body = [&invocations](const exp::TrialContext &ctx) {
        ++invocations;
        if (ctx.index == 1)
            ctx.checkBudget(ctx.cycleBudget + 1);
        return exp::TrialOutput{};
    };
    const exp::CampaignResult result = exp::runCampaign(std::move(spec));
    EXPECT_EQ(result.trials[1].status, exp::TrialStatus::TimedOut);
    EXPECT_EQ(result.trials[1].attempts, 1u);
    // The budget was genuinely consumed; no retry was spent on it.
    EXPECT_EQ(invocations, 3u);
}

// ---------------------------------------------------------------------
// Worker death.
// ---------------------------------------------------------------------

TEST(Campaign, DyingWorkerDegradesGracefully)
{
    exp::CampaignSpec spec = syntheticSpec(12, 3);
    std::atomic<bool> killed{false};
    spec.progress = [&killed](std::size_t, std::size_t) {
        if (!killed.exchange(true))
            throw std::runtime_error("observer crashed");
    };

    const exp::CampaignResult result = exp::runCampaign(std::move(spec));
    EXPECT_GE(result.workerDeaths, 1u);
    EXPECT_LE(result.workerDeaths, 3u);

    // Every trial still completed, and the aggregate is bit-identical
    // to a run whose workers all survived.
    EXPECT_EQ(result.aggregate.ok, 12u);
    EXPECT_EQ(result.trialCount, 12u);
    const exp::CampaignResult clean =
        exp::runCampaign(syntheticSpec(12, 3));
    EXPECT_EQ(result.aggregate.toJson().dump(),
              clean.aggregate.toJson().dump());
}

// ---------------------------------------------------------------------
// Checkpoint / resume.
// ---------------------------------------------------------------------

TEST(Checkpoint, TrialSerializationRoundTripsBitExactly)
{
    exp::TrialResult trial;
    trial.index = 5;
    trial.seed = exp::deriveRetrySeed(9, 5, 1);
    trial.status = exp::TrialStatus::Retried;
    trial.attempts = 2;
    trial.error = "first attempt: bad\nmultiline detail";
    trial.wallSeconds = 1.5;
    trial.output.simCycles = 123456;
    trial.output.metric.add(1.0);
    trial.output.metric.add(2.5e-300);  // subnormal-range double
    trial.output.metric.add(-0.0);      // signed zero survives too
    trial.output.scope.handleFaults = 3;
    trial.output.scope.totalReplays = 99;
    obs::MetricRegistry registry;
    registry.counter("t.count").set(7);
    registry.gauge("t.gauge").set(0.1);  // not exactly representable
    registry.latency("t.lat").record(3.25);
    registry.latency("t.lat").record(-1.75);
    trial.output.metrics = registry.snapshot();
    trial.output.payload = exp::json::Value::object()
                               .set("nested", exp::json::Value::array()
                                                  .push(1)
                                                  .push("two"))
                               .set("pi", 3.141592653589793);

    const std::string text = exp::CampaignCheckpoint::serializeTrial(trial);
    const auto parsed = exp::CampaignCheckpoint::parseTrial(text);
    ASSERT_TRUE(parsed.has_value());

    EXPECT_EQ(parsed->index, trial.index);
    EXPECT_EQ(parsed->seed, trial.seed);
    EXPECT_EQ(parsed->status, trial.status);
    EXPECT_EQ(parsed->attempts, trial.attempts);
    EXPECT_EQ(parsed->error, trial.error);
    EXPECT_EQ(parsed->output.payload.dump(), trial.output.payload.dump());
    EXPECT_EQ(parsed->output.metrics.toJson().dump(),
              trial.output.metrics.toJson().dump());

    // The acid test: serializing the parse reproduces every byte,
    // i.e. every double round-tripped through its bit pattern.
    EXPECT_EQ(exp::CampaignCheckpoint::serializeTrial(*parsed), text);
}

TEST(Checkpoint, MalformedTrialFilesAreRejected)
{
    EXPECT_FALSE(exp::CampaignCheckpoint::parseTrial("").has_value());
    EXPECT_FALSE(
        exp::CampaignCheckpoint::parseTrial("garbage\n").has_value());

    exp::TrialResult trial;
    trial.output.metric.add(1.0);
    const std::string text =
        exp::CampaignCheckpoint::serializeTrial(trial);
    EXPECT_TRUE(exp::CampaignCheckpoint::parseTrial(text).has_value());
    // Any truncation invalidates the record.
    EXPECT_FALSE(exp::CampaignCheckpoint::parseTrial(
                     text.substr(0, text.size() / 2))
                     .has_value());
}

namespace
{

/** A fresh, empty checkpoint directory under the test temp root. */
std::string
freshCheckpointDir(const char *name)
{
    const std::string dir = testing::TempDir() + name;
    std::filesystem::remove_all(dir);
    return dir;
}

} // namespace

TEST(Checkpoint, KilledCampaignResumesBitIdentically)
{
    const std::string dir = freshCheckpointDir("uscope_resume_ckpt");

    // The ground truth: the same campaign, never interrupted.
    const exp::CampaignResult baseline =
        exp::runCampaign(syntheticSpec(10, 2));

    // First run: trials 6..9 die (as if the campaign was killed while
    // they ran).  Failed trials are not persisted.
    exp::CampaignSpec crashing = syntheticSpec(10, 2);
    crashing.checkpointDir = dir;
    auto inner = crashing.body;
    crashing.body = [inner](const exp::TrialContext &ctx) {
        if (ctx.index >= 6)
            throw std::runtime_error("killed mid-campaign");
        return inner(ctx);
    };
    const exp::CampaignResult first = exp::runCampaign(std::move(crashing));
    EXPECT_EQ(first.aggregate.ok, 6u);
    EXPECT_EQ(first.aggregate.failed, 4u);
    EXPECT_EQ(first.resumedTrials, 0u);

    // Second run: healthy body, same spec, same directory.  Only the
    // four unfinished trials execute; the aggregate matches the
    // uninterrupted run bit for bit.
    exp::CampaignSpec resumed = syntheticSpec(10, 2);
    resumed.checkpointDir = dir;
    std::atomic<unsigned> invocations{0};
    auto healthy = resumed.body;
    resumed.body = [healthy, &invocations](const exp::TrialContext &ctx) {
        ++invocations;
        return healthy(ctx);
    };
    const exp::CampaignResult second = exp::runCampaign(std::move(resumed));
    EXPECT_EQ(second.resumedTrials, 6u);
    EXPECT_EQ(invocations.load(), 4u);
    EXPECT_EQ(second.aggregate.ok, 10u);
    EXPECT_EQ(second.aggregate.toJson().dump(),
              baseline.aggregate.toJson().dump());
    ASSERT_EQ(second.trials.size(), baseline.trials.size());
    for (std::size_t i = 0; i < baseline.trials.size(); ++i) {
        EXPECT_EQ(second.trials[i].seed, baseline.trials[i].seed);
        EXPECT_EQ(second.trials[i].output.payload.dump(),
                  baseline.trials[i].output.payload.dump());
    }

    // A third run restores everything and executes nothing.
    exp::CampaignSpec replay = syntheticSpec(10, 2);
    replay.checkpointDir = dir;
    replay.body = [](const exp::TrialContext &) -> exp::TrialOutput {
        throw std::runtime_error("must not run");
    };
    const exp::CampaignResult third = exp::runCampaign(std::move(replay));
    EXPECT_EQ(third.resumedTrials, 10u);
    EXPECT_EQ(third.aggregate.toJson().dump(),
              baseline.aggregate.toJson().dump());
}

TEST(Checkpoint, MismatchedManifestIsDiscarded)
{
    const std::string dir = freshCheckpointDir("uscope_mismatch_ckpt");

    exp::CampaignSpec a = syntheticSpec(4, 1);
    a.name = "campaign-a";
    a.checkpointDir = dir;
    exp::runCampaign(std::move(a));

    // A different campaign pointed at the same directory must not
    // inherit campaign-a's trials.
    exp::CampaignSpec b = syntheticSpec(4, 1);
    b.name = "campaign-b";
    b.masterSeed = 4321;
    b.checkpointDir = dir;
    const exp::CampaignResult fresh = exp::runCampaign(std::move(b));
    EXPECT_EQ(fresh.resumedTrials, 0u);
    EXPECT_EQ(fresh.aggregate.ok, 4u);

    // The directory now belongs to campaign-b: a rerun resumes it.
    exp::CampaignSpec again = syntheticSpec(4, 1);
    again.name = "campaign-b";
    again.masterSeed = 4321;
    again.checkpointDir = dir;
    EXPECT_EQ(exp::runCampaign(std::move(again)).resumedTrials, 4u);
}

TEST(Checkpoint, CorruptTrialFilesAreReRunNotTrusted)
{
    // A crash can leave a per-trial file truncated mid-write (the
    // atomic rename protects against *partial* files only when the
    // writer lives to rename; a torn filesystem or manual tampering
    // does not).  A corrupt record must degrade to "re-run that
    // trial" — never to a crash, and never to trusting the bytes.
    const std::string dir = freshCheckpointDir("uscope_corrupt_ckpt");

    const exp::CampaignResult baseline =
        exp::runCampaign(syntheticSpec(8, 1));

    exp::CampaignSpec seeded = syntheticSpec(8, 1);
    seeded.checkpointDir = dir;
    exp::runCampaign(std::move(seeded));

    const auto path = [&](std::size_t index) {
        return dir + "/trial_" + std::to_string(index) + ".ckpt";
    };
    const auto clobber = [&](std::size_t index, const std::string &text) {
        std::ofstream out(path(index),
                          std::ios::binary | std::ios::trunc);
        out << text;
    };
    // Three distinct failure shapes: truncated mid-record,
    // non-parseable garbage, zero bytes.
    std::stringstream intact;
    intact << std::ifstream(path(2), std::ios::binary).rdbuf();
    clobber(2, intact.str().substr(0, intact.str().size() / 2));
    clobber(5, "not a trial record\n");
    clobber(7, "");

    exp::CampaignSpec resumed = syntheticSpec(8, 1);
    resumed.checkpointDir = dir;
    std::atomic<unsigned> invocations{0};
    auto healthy = resumed.body;
    resumed.body = [healthy, &invocations](const exp::TrialContext &ctx) {
        ++invocations;
        return healthy(ctx);
    };
    const exp::CampaignResult second =
        exp::runCampaign(std::move(resumed));

    // Exactly the three corrupted trials re-ran; the five intact ones
    // restored — and the final aggregate is bit-identical to the
    // never-interrupted baseline.
    EXPECT_EQ(second.resumedTrials, 5u);
    EXPECT_EQ(invocations.load(), 3u);
    EXPECT_EQ(second.aggregate.toJson().dump(),
              baseline.aggregate.toJson().dump());
    EXPECT_EQ(exp::deterministicFingerprint(second),
              exp::deterministicFingerprint(baseline));
}
