/**
 * @file
 * Integration tests for the §8 defense models: each must behave the
 * way the paper argues — one defense genuinely stops the attack, the
 * others leave exploitable gaps.
 */

#include <gtest/gtest.h>

#include "defense/dejavu.hh"
#include "defense/fence_defense.hh"
#include "defense/pf_oblivious.hh"
#include "defense/tsgx.hh"

using namespace uscope;
using namespace uscope::defense;

TEST(FenceDefense, DefeatsPortContentionAtLowBenignCost)
{
    const FenceAblationResult result = runFenceAblation(42, 3000);

    // Undefended: the attack separates cleanly.
    EXPECT_TRUE(result.baselineDiv.inferredDivides);
    EXPECT_GT(result.baselineDiv.aboveThreshold, 10u);

    // Fenced: the div victim collapses to the mul noise floor.
    EXPECT_TRUE(result.attackDefeated);
    EXPECT_LE(result.fencedDiv.aboveThreshold,
              result.fencedMul.aboveThreshold + 2);

    // And the benign demand-paging workload barely notices.
    EXPECT_LT(result.benignOverhead, 0.05);
    EXPECT_GE(result.benignFencedCycles, result.benignBaselineCycles);
}

TEST(TsgxDefense, GrantsNMinusOneReplaysWhichSuffice)
{
    for (bool secret : {false, true}) {
        TsgxConfig config;
        config.secret = secret;
        const TsgxResult result = runTsgxAttack(config);

        // T-SGX does what it promises: the OS never handles a fault,
        // and the app terminates after N failed transactions...
        EXPECT_EQ(result.txAborts, config.abortThreshold);
        EXPECT_TRUE(result.victimTerminated);

        // ...but the N-1 replay windows already leaked the secret
        // through the (noiseless) cache channel.
        EXPECT_EQ(result.inferredDividesCache, secret);
        EXPECT_GE(result.mulHits + result.divHits,
                  config.abortThreshold / 2);
    }
}

TEST(DejavuDefense, DetectsOnlyAfterExtraction)
{
    DejavuConfig config;
    config.replays = 10;
    const DejavuResult result = runDejavuExperiment(config);

    // The attacker finished extracting before any detection could
    // trigger: the closing clock read is younger than the handle and
    // cannot retire during the replays.
    EXPECT_TRUE(result.secretExtracted);
    EXPECT_EQ(result.replaysCompleted, config.replays);
    EXPECT_TRUE(result.inferredSecret);
    // Detection does fire — after the fact.
    EXPECT_TRUE(result.detected);
    EXPECT_GT(result.measuredElapsed, config.detectionThreshold);
}

TEST(DejavuDefense, FewReplaysMaskAsOrdinaryFaults)
{
    DejavuConfig config;
    config.replays = 2;
    const DejavuResult result = runDejavuExperiment(config);

    // Two replays cost about two benign minor faults — below any
    // threshold that tolerates normal demand paging.
    EXPECT_TRUE(result.secretExtracted);
    EXPECT_FALSE(result.detected);
    EXPECT_GT(result.benignFaultCost, 1000u);
    EXPECT_LT(result.measuredElapsed,
              4 * result.benignFaultCost + 4000);
}

TEST(PfObliviousDefense, ClosesPageChannelButHelpsMicroScope)
{
    for (bool secret : {false, true}) {
        PfObliviousConfig config;
        config.secret = secret;
        const PfObliviousResult result =
            runPfObliviousExperiment(config);

        // The transformation achieves its goal: page traces match.
        EXPECT_TRUE(result.pageTraceSecretIndependent);
        // But it ADDS replay-handle candidates (§8: "the added memory
        // accesses provide more replay handles")...
        EXPECT_GT(result.obliviousHandleCandidates,
                  result.originalHandleCandidates);
        // ...and the port-contention channel still leaks the secret.
        EXPECT_TRUE(result.inferenceCorrect);
    }
}
