/**
 * @file
 * Batched lockstep sibling replay (DESIGN.md §17) tests.
 *
 * The contract under test: ms::runReplayBatch drives N sibling replay
 * windows — one fetch/decode stream, journal-rewind restores, and a
 * shared certified prefix forked mid-window — and produces results
 * byte-identical to the per-sibling loop it replaces
 * (restoreEpisodeFrom(seed_i) + run, N times).  The identity must
 * hold across fault plans, fast-forward modes, and worker counts.
 *
 * Three layers are pinned separately so a regression names its layer:
 *  - Rng::discardBelow and Core::reseedAdvanced reconstruct stream
 *    positions exactly (the fork reseed's foundation);
 *  - Microscope::restoreEpisodeForked from a mid-window snapshot
 *    equals rewinding to the origin and re-running the prefix;
 *  - the batch driver end-to-end equals the per-sibling loop, with
 *    the fork path demonstrably engaged.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <vector>

#include "common/random.hh"
#include "core/microscope.hh"
#include "core/replay_batch.hh"
#include "cpu/decode.hh"
#include "cpu/program.hh"
#include "exp/campaign.hh"
#include "fault/plan.hh"
#include "os/machine.hh"

using namespace uscope;

namespace
{

constexpr Cycles kRunBudget = 5'000'000;

std::shared_ptr<const cpu::Program>
share(cpu::Program program)
{
    return std::make_shared<const cpu::Program>(std::move(program));
}

/** Victim with a handle page and a transmit page (cf. test_diffreplay). */
struct PfVictim
{
    os::Pid pid;
    VAddr handle;
    VAddr transmit;
    std::shared_ptr<const cpu::Program> program;
};

PfVictim
makePfVictim(os::Kernel &kernel)
{
    PfVictim victim;
    victim.pid = kernel.createProcess("victim");
    victim.handle = kernel.allocVirtual(victim.pid, pageSize);
    victim.transmit = kernel.allocVirtual(victim.pid, pageSize);

    cpu::ProgramBuilder b;
    b.movi(1, static_cast<std::int64_t>(victim.handle))
        .movi(2, static_cast<std::int64_t>(victim.transmit))
        .ld(3, 1, 0)    // replay handle
        .ld(4, 2, 0)    // transmit
        .halt();
    victim.program = share(b.build());
    return victim;
}

/** Arm a differential episode on @p scope and run to the snapshot
 *  point; the caller takes it from there. */
void
armEpisode(os::Machine &m, ms::Microscope &scope, const PfVictim &victim)
{
    ms::AttackRecipe recipe;
    recipe.victim = victim.pid;
    recipe.replayHandle = victim.handle;
    recipe.confidence = 2;
    recipe.maxEpisodes = 1;
    recipe.differentialReplay = true;
    scope.setRecipe(std::move(recipe));

    scope.arm();
    m.kernel().startOnContext(victim.pid, 0, victim.program);
    if (!m.runUntil([&]() { return scope.episodeSnapshotPending(); },
                    kRunBudget))
        throw std::runtime_error("prefix never reached the snapshot");
    scope.takeEpisodeSnapshot();
}

/** Simulated-state fingerprint: clock, per-context stats, and every
 *  exported metric minus the host-mechanics prefixes (mem.physmem.*
 *  counts COW re-shares, os.replay.batch.* is batching telemetry —
 *  both record how a state was reached, which is exactly what the
 *  arms here vary). */
std::string
stateFingerprint(const os::Machine &m, const ms::Microscope &scope)
{
    obs::MetricRegistry registry;
    m.exportMetrics(registry);
    scope.exportMetrics(registry);
    obs::MetricSnapshot snap = registry.snapshot();
    snap.values.erase(
        std::remove_if(
            snap.values.begin(), snap.values.end(),
            [](const obs::MetricValue &v) {
                return v.name.rfind("mem.physmem.", 0) == 0 ||
                       v.name.rfind("os.replay.batch.", 0) == 0 ||
                       v.name.rfind("obs.trace.", 0) == 0;
            }),
        snap.values.end());
    return snap.toJson().dump() + "@" + std::to_string(m.cycle());
}

} // namespace

// --------------------------------------------------------------------
// Stream-position reconstruction primitives.
// --------------------------------------------------------------------

TEST(RngDiscard, MatchesSequentialBelow)
{
    // Bounds chosen to exercise rejection sampling: powers of two
    // never reject, (1<<63)+1 rejects ~half its raw draws.
    const std::uint64_t bounds[] = {2, 3, 6, 1000,
                                    (1ull << 63) + 1};
    for (const std::uint64_t bound : bounds) {
        Rng a(0xABCDEF), b(0xABCDEF);
        for (int i = 0; i < 1000; ++i)
            (void)a.below(bound);
        b.discardBelow(bound, 1000);
        EXPECT_EQ(a.draws(), b.draws()) << "bound " << bound;
        for (int i = 0; i < 8; ++i)
            EXPECT_EQ(a.next(), b.next())
                << "bound " << bound << " draw " << i;
    }
}

TEST(RngDiscard, ZeroCountIsANoOp)
{
    Rng a(7), b(7);
    b.discardBelow(3, 0);
    EXPECT_EQ(b.draws(), 0u);
    EXPECT_EQ(a.next(), b.next());
}

TEST(CoreReseed, AdvancedMatchesFreshlySeededTickedCore)
{
    // Run one machine K cycles from the episode origin, then rebuild
    // its issue-arbitration stream position on another via
    // reseedAdvanced: draw counts must agree with a reference stream
    // that consumed K below(numContexts) calls one by one.
    constexpr Cycles kTicks = 937;
    constexpr std::uint64_t kSeed = 51;

    os::Machine a, b;
    a.reseed(kSeed);
    a.run(kTicks);
    b.run(kTicks);  // park b at the same cycle, stream position aside
    b.core().reseedAdvanced(kSeed * 5 + 2, kTicks);

    Rng ref(kSeed * 5 + 2);
    for (Cycles c = 0; c < kTicks; ++c)
        (void)ref.below(a.core().config().numContexts);

    EXPECT_EQ(a.core().rngDraws(), ref.draws());
    EXPECT_EQ(b.core().rngDraws(), ref.draws());
}

// --------------------------------------------------------------------
// Mid-window fork restore.
// --------------------------------------------------------------------

TEST(BatchReplayFork, ForkedRestoreMatchesRewindAndRerun)
{
    // A sibling restored from another seed's mid-window snapshot via
    // restoreEpisodeForked must be bit-identical to one rewound to
    // the episode origin that re-ran the prefix itself.
    os::Machine m;
    ms::Microscope scope(m);
    const PfVictim victim = makePfVictim(m.kernel());
    armEpisode(m, scope, victim);

    const os::Snapshot &snap = scope.episodeSnapshot();
    const ms::EpisodeState state = scope.episodeState();
    const Cycles c0 = m.cycle();
    constexpr Cycles kPrefix = 32;
    constexpr std::uint64_t kPrefixSeed = 501;
    constexpr std::uint64_t kSiblingSeed = 502;

    // Reference: the sibling runs its own prefix from the origin.
    scope.restoreEpisodeFrom(snap, state, kSiblingSeed);
    const std::uint64_t faults0 = scope.stats().handleFaults;
    m.run(kPrefix);
    // The fork contract only covers certified-clean prefixes; if
    // either assert fires, kPrefix crossed a divergence sentinel and
    // must shrink.
    ASSERT_EQ(m.seedSensitiveDraws(), 0u);
    ASSERT_EQ(scope.stats().handleFaults, faults0);
    ASSERT_TRUE(m.runUntilHalted(0, kRunBudget));
    const std::string reference = stateFingerprint(m, scope);

    // Forked: another seed runs the prefix, the sibling adopts its
    // state at the fork and rebuilds stream positions as of c0.
    scope.restoreEpisodeFrom(snap, state, kPrefixSeed);
    m.run(kPrefix);
    const os::Snapshot forkSnap = m.snapshot();
    scope.restoreEpisodeForked(forkSnap, state, kSiblingSeed, c0);
    EXPECT_EQ(m.cycle(), c0 + kPrefix);

    // Stream positions: seed-sensitive streams fresh, the core's
    // advanced by exactly the prefix's per-tick draws.
    EXPECT_EQ(m.seedSensitiveDraws(), 0u);
    Rng ref(kSiblingSeed * 5 + 2);
    for (Cycles c = 0; c < kPrefix; ++c)
        (void)ref.below(m.core().config().numContexts);
    EXPECT_EQ(m.core().rngDraws(), ref.draws());

    ASSERT_TRUE(m.runUntilHalted(0, kRunBudget));
    EXPECT_EQ(stateFingerprint(m, scope), reference);
}

// --------------------------------------------------------------------
// Driver end-to-end: batched == per-sibling loop.
// --------------------------------------------------------------------

namespace
{

constexpr std::uint64_t kBatchIterations = 4;

/**
 * One trial: arm the episode, then run kBatchIterations sibling
 * windows — through runReplayBatch when @p batched, through the
 * documented-equivalent per-sibling loop otherwise.  minForkPrefix=1
 * forces the fork path onto this small window, so the identity check
 * covers the whole pipeline (journal rewinds, fork snapshot,
 * reseedForkedAt), not just the rewind fallback.
 */
exp::TrialOutput
batchTrial(const exp::TrialContext &ctx, bool batched)
{
    exp::TrialOutput out;
    os::Machine m(ctx.machine);
    ms::Microscope scope(m);
    const PfVictim victim = makePfVictim(m.kernel());
    armEpisode(m, scope, victim);

    const os::Snapshot &snap = scope.episodeSnapshot();
    const ms::EpisodeState state = scope.episodeState();
    std::vector<std::uint64_t> haltCycles;

    if (batched) {
        ms::ReplayBatchConfig config;
        config.trialSeed = ctx.seed;
        config.iterations = kBatchIterations;
        config.runBudget = kRunBudget;
        config.haltCtx = 0;
        config.minForkPrefix = 1;
        config.onSibling = [&](std::uint64_t) {
            haltCycles.push_back(m.cycle());
        };
        ms::runReplayBatch(scope, snap, state, config);
    } else {
        for (std::uint64_t i = 0; i < kBatchIterations; ++i) {
            scope.restoreEpisodeFrom(
                snap, state, ms::deriveReplaySeed(ctx.seed, i));
            if (!m.runUntilHalted(0, kRunBudget))
                throw std::runtime_error("window never halted");
            haltCycles.push_back(m.cycle());
        }
    }

    out.scope = scope.stats();
    out.simCycles = m.cycle();
    exp::json::Value halts = exp::json::Value::array();
    for (const std::uint64_t cycle : haltCycles) {
        out.metric.add(static_cast<double>(cycle));
        halts.push(cycle);
    }
    out.payload = exp::json::Value::object()
                      .set("halts", std::move(halts))
                      .set("retired", m.core().stats(0).retired);

    obs::MetricRegistry registry;
    m.exportMetrics(registry);
    scope.exportMetrics(registry);
    out.metrics = registry.snapshot();
    return out;
}

exp::CampaignResult
runBatchCampaign(bool batched, bool chaos, bool ff, unsigned workers)
{
    exp::CampaignSpec spec;
    spec.name = "batchreplay_matrix";
    spec.trials = 3;
    spec.masterSeed = 11;
    spec.workers = workers;
    spec.keepTrialResults = true;
    spec.machineFactory = [chaos, ff](const exp::TrialContext &) {
        os::MachineConfig config;
        config.fault =
            chaos ? fault::FaultPlan::chaos() : fault::FaultPlan{};
        config.fastForward = ff;
        return config;
    };
    spec.body = [batched](const exp::TrialContext &ctx) {
        return batchTrial(ctx, batched);
    };
    return exp::runCampaign(std::move(spec));
}

} // namespace

TEST(BatchReplayDriver, MatchesPerSiblingLoopAcrossMatrix)
{
    for (const bool chaos : {false, true}) {
        const exp::CampaignResult ref =
            runBatchCampaign(false, chaos, true, 1);
        ASSERT_EQ(ref.aggregate.ok, ref.trialCount)
            << "reference campaign must succeed, or the identity "
               "check is vacuous";
        const std::string want = exp::deterministicFingerprint(ref);

        struct Cell
        {
            bool ff;
            unsigned workers;
        };
        const Cell cells[] = {
            {true, 1}, {true, 2}, {true, 4}, {false, 1},
        };
        for (const Cell &cell : cells) {
            const exp::CampaignResult got = runBatchCampaign(
                true, chaos, cell.ff, cell.workers);
            EXPECT_EQ(exp::deterministicFingerprint(got), want)
                << "chaos=" << chaos << " ff=" << cell.ff
                << " workers=" << cell.workers;
        }
    }
}

TEST(BatchReplayDriver, ForkPathEngagesOnCleanPrefix)
{
    // With DRAM jitter and probe jitter silenced, nothing draws
    // before the replay fault delivers, so the certified prefix is
    // non-empty and the fork path must engage: one full leader
    // restore, every later sibling a journal rewind.
    os::MachineConfig config;
    config.mem.dramJitter = 0;
    config.costs.probeJitter = 0;
    os::Machine m(config);
    ms::Microscope scope(m);
    const PfVictim victim = makePfVictim(m.kernel());
    armEpisode(m, scope, victim);

    ms::ReplayBatchConfig batch;
    batch.trialSeed = 21;
    batch.iterations = kBatchIterations;
    batch.runBudget = kRunBudget;
    batch.minForkPrefix = 1;
    const ms::ReplayBatchStats stats = ms::runReplayBatch(
        scope, scope.episodeSnapshot(), scope.episodeState(), batch);

    EXPECT_GT(stats.sharedCycles, 0u);
    EXPECT_EQ(stats.journaledRestores + stats.fullRestores,
              kBatchIterations - 1);
    EXPECT_EQ(stats.fullRestores, 0u)
        << "every non-leader sibling should rewind the journal";
}

TEST(BatchReplayDriver, RdrandVictimDisablesPrefixSharing)
{
    // RDRAND in the victim draws per execution from the entropy
    // stream, so no prefix can be certified: the pre-gate must
    // report sharedCycles == 0 while the batch itself still runs.
    os::Machine m;
    ms::Microscope scope(m);
    auto &kernel = m.kernel();

    PfVictim victim;
    victim.pid = kernel.createProcess("victim");
    victim.handle = kernel.allocVirtual(victim.pid, pageSize);
    victim.transmit = kernel.allocVirtual(victim.pid, pageSize);
    cpu::ProgramBuilder b;
    b.movi(1, static_cast<std::int64_t>(victim.handle))
        .rdrand(5)
        .ld(3, 1, 0)
        .halt();
    victim.program = share(b.build());
    armEpisode(m, scope, victim);

    ms::ReplayBatchConfig batch;
    batch.trialSeed = 22;
    batch.iterations = kBatchIterations;
    batch.runBudget = kRunBudget;
    batch.minForkPrefix = 1;
    const ms::ReplayBatchStats stats = ms::runReplayBatch(
        scope, scope.episodeSnapshot(), scope.episodeState(), batch);

    EXPECT_EQ(stats.sharedCycles, 0u);
    EXPECT_EQ(stats.journaledRestores + stats.fullRestores,
              kBatchIterations - 1);
}

// --------------------------------------------------------------------
// Decoded-stream sharing (the one fetch/decode evaluation).
// --------------------------------------------------------------------

TEST(DecodedStream, MemoizesFlagsAndClampsBeyondEnd)
{
    cpu::ProgramBuilder b;
    b.movi(1, 0x1000)
        .ld(2, 1, 0)
        .st(1, 2, 8)
        .fence()
        .halt();
    const auto program = share(b.build());
    const cpu::DecodedStream &decoded = program->decoded();

    EXPECT_FALSE(decoded.at(0).isMem());
    EXPECT_TRUE(decoded.at(1).isLoad());
    EXPECT_TRUE(decoded.at(2).isStore());
    EXPECT_TRUE(decoded.at(3).isBarrier(false));
    EXPECT_TRUE(decoded.at(4).isHalt());
    // Beyond-the-end clamps to a decoded Halt, mirroring Program::at.
    EXPECT_TRUE(decoded.at(10'000).isHalt());
    EXPECT_FALSE(decoded.hasRdrand());

    cpu::ProgramBuilder r;
    r.rdrand(1).halt();
    EXPECT_TRUE(share(r.build())->decoded().hasRdrand());
}

TEST(DecodedStream, OneStreamDrivesEveryContext)
{
    // Contexts running the same Program read the same decode table —
    // pointer-identical, not merely equal.
    os::Machine m;
    auto &kernel = m.kernel();
    const PfVictim victim = makePfVictim(kernel);
    kernel.startOnContext(victim.pid, 0, victim.program);
    EXPECT_EQ(&m.core().contextProgram(0)->decoded(),
              &victim.program->decoded());
}
