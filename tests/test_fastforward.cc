/**
 * @file
 * Differential bit-identity suite for event-driven fast-forward
 * (DESIGN.md §10).
 *
 * MachineConfig::fastForward lets Machine::run/runUntil jump the clock
 * over provably inert cycles.  The contract is that this is purely a
 * wall-clock optimization: every stat counter, MetricSnapshot, trace
 * event, and campaign JSON fingerprint must match the cycle-by-cycle
 * baseline bit for bit.  This suite enforces the contract on
 * fig10-shaped (port contention) and fig11-shaped (AES replay)
 * workloads, with fast-forward on and off, at 1/2/4 workers — and is
 * run under TSan in CI, where the worker sweep doubles as a race
 * check on the skip path.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "attack/aes_attack.hh"
#include "attack/port_contention.hh"
#include "common/random.hh"
#include "exp/campaign.hh"
#include "exp/json.hh"
#include "os/machine.hh"

using namespace uscope;

namespace
{

// The fingerprint shape moved into the library (exp::
// deterministicFingerprint) so the service daemon, the benches, and
// these tests all compare the exact same bytes.
using exp::deterministicFingerprint;

/** Fig.-10-shaped: SMT port-contention sweep, div vs mul arms. */
exp::CampaignSpec
fig10Spec(bool fast_forward, unsigned workers,
          const fault::FaultPlan &plan = {})
{
    exp::CampaignSpec spec;
    spec.name = "ff_fig10";
    spec.trials = 4;
    spec.masterSeed = 42;
    spec.workers = workers;
    spec.body = [fast_forward, plan](const exp::TrialContext &ctx) {
        attack::PortContentionConfig config;
        config.victimDivides = ctx.index % 2 == 1;
        config.samples = 120;
        config.replays = 8;
        config.threshold = 120;
        config.seed = ctx.seed;
        config.machine.fastForward = fast_forward;
        config.machine.fault = plan;
        const attack::PortContentionResult result =
            attack::runPortContentionAttack(config);

        exp::TrialOutput out;
        for (Cycles sample : result.samples)
            out.metric.add(static_cast<double>(sample));
        out.metrics = result.metrics;
        out.simCycles = result.totalCycles;
        out.payload = exp::json::Value::object()
                          .set("above_threshold", result.aboveThreshold)
                          .set("inferred_divides",
                               result.inferredDivides);
        return out;
    };
    return spec;
}

/** Fig.-11-shaped: one AES replay timeline per trial, random keys. */
exp::CampaignSpec
fig11Spec(bool fast_forward, unsigned workers,
          const fault::FaultPlan &plan = {})
{
    exp::CampaignSpec spec;
    spec.name = "ff_fig11";
    spec.trials = 3;
    spec.masterSeed = 42;
    spec.workers = workers;
    spec.body = [fast_forward, plan](const exp::TrialContext &ctx) {
        attack::AesAttackConfig config;
        Rng rng(ctx.seed);
        for (unsigned i = 0; i < 16; ++i) {
            config.key[i] = static_cast<std::uint8_t>(rng.below(256));
            config.plaintext[i] =
                static_cast<std::uint8_t>(rng.below(256));
        }
        config.seed = ctx.seed;
        config.machine.fastForward = fast_forward;
        config.machine.fault = plan;
        const attack::Fig11Result fig11 = attack::runFig11(config);

        exp::TrialOutput out;
        out.metrics = fig11.metrics;
        out.metric.add(fig11.matchesGroundTruth ? 1.0 : 0.0);
        exp::json::Value probes = exp::json::Value::array();
        for (const attack::LineProbe &probe : fig11.replays) {
            exp::json::Value row = exp::json::Value::array();
            for (Cycles latency : probe.latency)
                row.push(latency);
            probes.push(std::move(row));
        }
        out.payload = exp::json::Value::object()
                          .set("consistent",
                               fig11.consistentAcrossPrimedReplays)
                          .set("matches", fig11.matchesGroundTruth)
                          .set("probe_latencies", std::move(probes));
        return out;
    };
    return spec;
}

/**
 * A dense FaultPlan for the noisy differential runs: every fault class
 * fires inside these small workloads, so the fingerprint covers the
 * scheduled-injection path (nextEventCycle interplay) and all three
 * event-coupled noise streams under fast-forward.
 */
fault::FaultPlan
denseFaults()
{
    fault::FaultPlan plan;
    plan.interruptMeanGap = 800;
    plan.interruptEvictions = 64;
    plan.preemptMeanGap = 5000;
    plan.portJitterRate = 0.1;
    plan.portJitterMax = 3;
    plan.probeJitterMax = 5;
    plan.sampleDropRate = 0.1;
    return plan;
}

/** fig10Spec under the dense fault plan. */
exp::CampaignSpec
noisyFig10Spec(bool fast_forward, unsigned workers)
{
    exp::CampaignSpec spec =
        fig10Spec(fast_forward, workers, denseFaults());
    spec.name = "ff_fig10_noisy";
    return spec;
}

/** fig11Spec under the dense fault plan. */
exp::CampaignSpec
noisyFig11Spec(bool fast_forward, unsigned workers)
{
    exp::CampaignSpec spec =
        fig11Spec(fast_forward, workers, denseFaults());
    spec.name = "ff_fig11_noisy";
    return spec;
}

/** Run @p make over ff on/off × 1/2/4 workers; all must agree. */
void
expectBitIdenticalEverywhere(
    exp::CampaignSpec (*make)(bool, unsigned))
{
    const std::string baseline =
        deterministicFingerprint(exp::runCampaign(make(false, 1)));
    ASSERT_FALSE(baseline.empty());
    for (const bool fast_forward : {false, true}) {
        for (const unsigned workers : {1u, 2u, 4u}) {
            const exp::CampaignResult result =
                exp::runCampaign(make(fast_forward, workers));
            EXPECT_EQ(deterministicFingerprint(result), baseline)
                << "fast_forward=" << fast_forward
                << " workers=" << workers;
        }
    }
}

} // namespace

TEST(FastForward, Fig10FingerprintBitIdenticalAcrossModesAndWorkers)
{
    expectBitIdenticalEverywhere(
        [](bool ff, unsigned workers) { return fig10Spec(ff, workers); });
}

TEST(FastForward, Fig11FingerprintBitIdenticalAcrossModesAndWorkers)
{
    expectBitIdenticalEverywhere(
        [](bool ff, unsigned workers) { return fig11Spec(ff, workers); });
}

TEST(FastForward, NoisyFig10FingerprintBitIdenticalEverywhere)
{
    // The §11 contract: a scheduled injection holds the event horizon,
    // so fast-forward lands on every firing cycle and the whole fault
    // schedule — and everything downstream of it — is bit-identical
    // with the skip path on or off, at any worker count.
    expectBitIdenticalEverywhere(noisyFig10Spec);
}

TEST(FastForward, NoisyFig11FingerprintBitIdenticalEverywhere)
{
    expectBitIdenticalEverywhere(noisyFig11Spec);
}

TEST(FastForward, NoisyRunsActuallyInjectFaults)
{
    // Guard against the noisy differential tests passing vacuously:
    // the dense plan must fire visibly inside these small workloads.
    const exp::CampaignResult result =
        exp::runCampaign(noisyFig10Spec(true, 1));
    const obs::MetricValue *interrupts =
        result.aggregate.metrics.find("fault.interrupts");
    ASSERT_NE(interrupts, nullptr);
    EXPECT_GT(interrupts->counter, 0u);
    const obs::MetricValue *dropped =
        result.aggregate.metrics.find("fault.samples_dropped");
    ASSERT_NE(dropped, nullptr);
    EXPECT_GT(dropped->counter, 0u);
}

TEST(FastForward, TracedFig11EventLogIsBitIdentical)
{
    // Event-trace spans are part of the bit-identity contract: with
    // tracing enabled the skip logic must refuse to elide cycles that
    // would have recorded events (e.g. per-cycle PortConflict retries).
    const auto run = [](bool fast_forward) {
        attack::AesAttackConfig config;
        for (unsigned i = 0; i < 16; ++i) {
            config.key[i] = static_cast<std::uint8_t>(i);
            config.plaintext[i] = static_cast<std::uint8_t>(0x20 + i);
        }
        config.machine.obs.traceEvents = true;
        config.machine.fastForward = fast_forward;
        return attack::runFig11(config);
    };
    const attack::Fig11Result on = run(true);
    const attack::Fig11Result off = run(false);

    EXPECT_EQ(on.events.total, off.events.total);
    EXPECT_EQ(on.events.dropped, off.events.dropped);
    ASSERT_EQ(on.events.events.size(), off.events.events.size());
    for (std::size_t i = 0; i < on.events.events.size(); ++i) {
        const obs::Event &a = on.events.events[i];
        const obs::Event &b = off.events.events[i];
        EXPECT_EQ(a.cycle, b.cycle) << "event " << i;
        EXPECT_EQ(a.kind, b.kind) << "event " << i;
        EXPECT_EQ(a.a, b.a) << "event " << i;
        EXPECT_EQ(a.b, b.b) << "event " << i;
        EXPECT_EQ(a.addr, b.addr) << "event " << i;
    }
}

TEST(FastForward, RunLandsExactlyOnTheLimit)
{
    // An idle machine has no pending events at all; the jump must
    // clamp to the requested cycle count, never overshoot it.  The
    // premise requires a noiseless machine: pin an empty FaultPlan so
    // a USCOPE_FAULT_PLAN=chaos environment (the CI chaos job) cannot
    // schedule injections that would hold the event horizon finite.
    os::MachineConfig mcfg;
    mcfg.fault = fault::FaultPlan{};
    os::Machine machine(mcfg);
    ASSERT_TRUE(machine.config().fastForward);
    EXPECT_EQ(machine.nextEventCycle(), kNoEventCycle);
    machine.run(12345);
    EXPECT_EQ(machine.cycle(), 12345u);
    machine.run(1);
    EXPECT_EQ(machine.cycle(), 12346u);
}

TEST(FastForward, RngStreamMatchesCycleByCycleRun)
{
    // Skipped cycles still consume the per-cycle SMT arbitration draw,
    // so the core's RNG stream — and with it every downstream decision
    // — stays aligned with the baseline.  Compare full machine state
    // via the metrics snapshot after a mixed idle/busy run.
    const auto snapshot = [](bool fast_forward) {
        os::MachineConfig config;
        config.fastForward = fast_forward;
        os::Machine machine(config);
        machine.run(5000);
        return std::pair(machine.metricsSnapshot().toJson().dump(),
                         machine.cycle());
    };
    EXPECT_EQ(snapshot(true), snapshot(false));
}
