/**
 * @file
 * End-to-end integration tests for every attack in src/attack — the
 * paper's demonstrated results as assertions.
 */

#include <gtest/gtest.h>

#include "attack/aes_attack.hh"
#include "attack/control_flow.hh"
#include "attack/loop_secret.hh"
#include "attack/mispredict_replay.hh"
#include "attack/port_contention.hh"
#include "attack/rdrand_bias.hh"
#include "attack/single_secret.hh"
#include "attack/tsx_replay.hh"

using namespace uscope;
using namespace uscope::attack;

// ---------------------------------------------------------------------
// §4.3 / Figure 10: the headline result.
// ---------------------------------------------------------------------

/** Parameterized over seeds: the verdict must be robust. */
class PortContentionSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(PortContentionSweep, DetectsTwoDividesInOneLogicalRun)
{
    PortContentionConfig config;
    config.samples = 3000;
    config.replays = 60;
    config.seed = GetParam();

    config.victimDivides = true;
    const auto div_run = runPortContentionAttack(config);
    config.victimDivides = false;
    const auto mul_run = runPortContentionAttack(config);

    EXPECT_TRUE(div_run.victimCompleted);
    EXPECT_TRUE(mul_run.victimCompleted);
    // The separation the paper reports as 4 vs 64 out of 10,000:
    // div exceedances must dwarf mul exceedances.
    EXPECT_GE(div_run.aboveThreshold, 10u)
        << "div victim produced too little contention";
    EXPECT_LE(mul_run.aboveThreshold, 5u)
        << "mul victim produced too much noise";
    EXPECT_GT(div_run.aboveThreshold, 4 * mul_run.aboveThreshold);
    EXPECT_TRUE(div_run.inferredDivides);
    EXPECT_FALSE(mul_run.inferredDivides);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PortContentionSweep,
                         ::testing::Values(1u, 7u, 42u, 1234u));

TEST(PortContention, ReplaysAreArchitecturallyInvisible)
{
    // Regardless of how many times the window replays, the victim's
    // architectural result is the single-run result.
    for (std::uint64_t replays : {1ull, 10ull, 50ull}) {
        PortContentionConfig config;
        // Enough Monitor samples that the run outlasts the replays.
        config.samples = static_cast<unsigned>(replays * 60 + 500);
        config.replays = replays;
        const auto result = runPortContentionAttack(config);
        EXPECT_TRUE(result.victimCompleted) << replays;
        EXPECT_GE(result.replaysDone, replays) << replays;
    }
}

TEST(PortContention, MedianStaysBelowThreshold)
{
    PortContentionConfig config;
    config.samples = 2000;
    const auto result = runPortContentionAttack(config);
    // "most Monitor samples are taken while the page fault handling
    // code is running... below the threshold" (§6.1).
    EXPECT_LT(result.medianLatency, config.threshold);
}

// ---------------------------------------------------------------------
// §4.4 / Figure 11: the AES cache attack.
// ---------------------------------------------------------------------

TEST(AesAttack, Fig11ShapeReproduces)
{
    AesAttackConfig config;
    for (unsigned i = 0; i < 16; ++i) {
        config.key[i] = static_cast<std::uint8_t>(i);
        config.plaintext[i] = static_cast<std::uint8_t>(0x20 + i);
    }
    const Fig11Result result = runFig11(config);

    ASSERT_EQ(result.replays.size(), 3u);
    // Replays 1 and 2 (primed) must agree exactly and match ground
    // truth: only the victim-accessed Td1 lines hit, all else DRAM.
    EXPECT_TRUE(result.consistentAcrossPrimedReplays);
    EXPECT_TRUE(result.matchesGroundTruth);

    // The Figure-11 latency bands: hits < 60, misses > 300.
    for (std::size_t r = 1; r < 3; ++r) {
        for (unsigned line = 0; line < 16; ++line) {
            const Cycles latency = result.replays[r].latency[line];
            if (result.expectedLines.count(line))
                EXPECT_LT(latency, 70u) << "replay " << r
                                        << " line " << line;
            else
                EXPECT_GT(latency, 300u) << "replay " << r
                                         << " line " << line;
        }
    }

    // Replay 0 (unprimed, warm caches) shows the paper's mixture:
    // at least one line in each of the L1 / L2-L3 / memory bands.
    unsigned low = 0;
    unsigned mid = 0;
    unsigned high = 0;
    for (unsigned line = 0; line < 16; ++line) {
        const Cycles latency = result.replays[0].latency[line];
        low += latency < 70;
        mid += latency >= 70 && latency < 250;
        high += latency >= 250;
    }
    EXPECT_GT(low, 0u);
    EXPECT_GT(mid, 0u);
    EXPECT_GT(high, 0u);
}

TEST(AesAttack, FullExtractionSingleSteps)
{
    AesAttackConfig config;
    for (unsigned i = 0; i < 16; ++i) {
        config.key[i] = static_cast<std::uint8_t>(0x10 + 3 * i);
        config.plaintext[i] = static_cast<std::uint8_t>(0xA0 ^ i);
    }
    const AesExtractionResult result = runAesExtraction(config);

    // 9 inner rounds x 4 t-groups, one episode each.
    EXPECT_EQ(result.episodes.size(), 36u);
    // The decryption still produced the right plaintext: the attack
    // is invisible to the victim's architectural execution.
    EXPECT_TRUE(result.plaintextCorrect);
    EXPECT_GE(result.totalReplays, 36u * config.replaysPerEpisode);

    // Completeness: every table line the reference decryption touches
    // in round r appears in the measured lines for round r (Td1..Td3
    // from handle windows; Td0 from pivot windows).
    crypto::AesKey enc(config.key.data(), 128, false);
    crypto::AesKey dec(config.key.data(), 128, true);
    std::uint8_t ct[16];
    crypto::encryptBlock(enc, config.plaintext.data(), ct);
    const auto trace = crypto::traceDecryption(dec, ct);

    for (unsigned round = 1; round <= 9; ++round) {
        const auto measured = result.roundLines(round);
        for (unsigned table = 0; table < 4; ++table) {
            std::set<unsigned> expected;
            for (std::uint8_t index : trace.indices[round - 1][table])
                expected.insert(crypto::tableLineOf(index));
            // Measured ⊇ expected (the window may also catch the next
            // round's independent lookups — real speculative bleed).
            for (unsigned line : expected) {
                EXPECT_TRUE(measured[table].count(line))
                    << "round " << round << " table " << table
                    << " line " << line << " not extracted";
            }
            // And bounded: nothing outside this and the next round.
            std::set<unsigned> allowed = expected;
            if (round < 9) {
                for (std::uint8_t index : trace.indices[round][table])
                    allowed.insert(crypto::tableLineOf(index));
            }
            for (unsigned line : measured[table]) {
                EXPECT_TRUE(allowed.count(line))
                    << "round " << round << " table " << table
                    << " spurious line " << line;
            }
        }
    }

    // Final round: the Td4 lines measured at the last pivot are a
    // subset of (and non-trivially cover) the inverse-sbox accesses.
    std::set<unsigned> td4_expected;
    for (std::uint8_t index : trace.indices[9][4])
        td4_expected.insert(crypto::tableLineOf(index));
    for (unsigned line : result.td4Lines)
        EXPECT_TRUE(td4_expected.count(line)) << line;
    EXPECT_GT(result.td4Lines.size(), 0u);
}

TEST(AesAttack, NibbleRecoveryExtensionIsSound)
{
    // The key-recovery extension: every recovered round-1 nibble must
    // be CORRECT (soundness), and a useful number must be recovered.
    unsigned total_recovered = 0;
    unsigned total_correct = 0;
    for (std::uint64_t seed : {42ull, 77ull}) {
        AesAttackConfig config;
        config.seed = seed;
        for (unsigned i = 0; i < 16; ++i) {
            config.key[i] =
                static_cast<std::uint8_t>(seed * 13 + i * 7);
            config.plaintext[i] =
                static_cast<std::uint8_t>(seed + i);
        }
        const auto result = runAesExtraction(config);
        const auto recovered = recoverRound1Nibbles(result);
        const auto truth = groundTruthRound1Nibbles(config);
        for (unsigned i = 0; i < 16; ++i) {
            if (!recovered[i])
                continue;
            ++total_recovered;
            total_correct += *recovered[i] == truth[i];
        }
    }
    EXPECT_EQ(total_correct, total_recovered)
        << "recovered nibbles must never be wrong";
    EXPECT_GE(total_recovered, 12u) << "too few nibbles recovered";
}

// ---------------------------------------------------------------------
// Figure 5 / §4.2.1: the single-secret attack.
// ---------------------------------------------------------------------

TEST(SingleSecret, SubnormalChannelAndCacheChannel)
{
    for (bool subnormal : {false, true}) {
        SingleSecretConfig config;
        config.subnormal = subnormal;
        config.id = 321;
        const auto result = runSingleSecretAttack(config);
        EXPECT_TRUE(result.victimCompleted);
        EXPECT_EQ(result.inferredSubnormal, subnormal);
        // The cache channel pins secrets[id]'s line either way.
        ASSERT_TRUE(result.inferredLine.has_value());
        EXPECT_EQ(*result.inferredLine, result.trueLine);
    }
}

// ---------------------------------------------------------------------
// Figure 4c / §4.2.3: control-flow secrets.
// ---------------------------------------------------------------------

TEST(ControlFlow, CacheVariantRecoversBranchDirection)
{
    for (bool secret : {false, true}) {
        ControlFlowConfig config;
        config.secret = secret;
        const auto result = runControlFlowAttack(config);
        ASSERT_TRUE(result.inferredSecret.has_value());
        EXPECT_EQ(*result.inferredSecret, secret);
        EXPECT_TRUE(result.victimCompleted);
    }
}

TEST(ControlFlow, MispredictionLeaksSecretEqualsPrediction)
{
    // §4.2.3 "Prediction": with the predictor primed to a known
    // direction, observing wrong-path residue reveals whether the
    // secret matches the prediction.
    for (bool secret : {false, true}) {
        for (bool primed_taken : {false, true}) {
            ControlFlowConfig config;
            config.secret = secret;
            config.primeTaken = primed_taken;
            const auto result = runControlFlowAttack(config);
            // beq taken means secret == 0 (the mul side).
            const bool branch_taken = !secret;
            const bool mispredicts = branch_taken != primed_taken;
            EXPECT_EQ(result.bothPathsObserved, mispredicts)
                << "secret " << secret << " primed " << primed_taken;
            ASSERT_TRUE(result.inferredSecret.has_value());
            EXPECT_EQ(*result.inferredSecret, secret);
        }
    }
}

// ---------------------------------------------------------------------
// Figure 4b / §4.2.2: loop secrets via pivot single-stepping.
// ---------------------------------------------------------------------

TEST(LoopSecret, RecoversPerIterationLinesSoundly)
{
    LoopSecretConfig config;
    config.secretLines = {9, 3, 60, 17, 27, 41, 0, 55};  // distinct
    const auto result = runLoopSecretAttack(config);
    EXPECT_TRUE(result.victimCompleted);
    EXPECT_EQ(result.wrong, 0u);
    // With distinct lines, suffix differencing recovers everything.
    EXPECT_EQ(result.correct, config.secretLines.size());
}

TEST(LoopSecret, CollidingLinesAreAmbiguousNotWrong)
{
    LoopSecretConfig config;
    config.secretLines = {5, 5, 5, 5};  // worst case: all identical
    const auto result = runLoopSecretAttack(config);
    EXPECT_EQ(result.wrong, 0u);
    // The final iteration is always unambiguous.
    ASSERT_TRUE(result.recovered.back().has_value());
    EXPECT_EQ(*result.recovered.back(), 5u);
}

// ---------------------------------------------------------------------
// §7.2: RDRAND.
// ---------------------------------------------------------------------

TEST(Rdrand, FenceBlocksObservationWithoutItLeaksEveryDraw)
{
    RdrandConfig config;
    config.serializingRdrand = false;
    const auto leaky = runRdrandObservation(config);
    EXPECT_EQ(leaky.observations, config.replays);
    EXPECT_TRUE(leaky.victimCompleted);

    config.serializingRdrand = true;  // real Intel behaviour
    const auto fenced = runRdrandObservation(config);
    EXPECT_EQ(fenced.observations, 0u);
    EXPECT_TRUE(fenced.victimCompleted);
    EXPECT_NE(fenced.retiredBit, -1);
}

// ---------------------------------------------------------------------
// §7.1: TSX-abort replay handles.
// ---------------------------------------------------------------------

TEST(TsxReplay, AbortsReplayTheTransactionBody)
{
    for (bool secret : {false, true}) {
        TsxReplayConfig config;
        config.secret = secret;
        config.aborts = 8;
        const auto result = runTsxSecretReplay(config);
        EXPECT_EQ(result.txAborts, 8u);
        EXPECT_GE(result.observations, 8u);
        EXPECT_TRUE(result.victimSucceeded);  // finally committed
        EXPECT_EQ(result.inferredSecret, secret);
    }
}

TEST(TsxReplay, BiasesSerializingRdrand)
{
    // §7.1's point: with TSX handles, RDRAND's fence is ineffective —
    // and because aborts happen after retirement, the *committed*
    // value can be biased.
    for (int desired : {0, 1}) {
        unsigned biased = 0;
        unsigned completed = 0;
        for (unsigned trial = 0; trial < 8; ++trial) {
            TsxBiasConfig config;
            config.desiredBit = desired;
            config.seed = 1000 + trial * 17 + desired;
            const auto result = runTsxRdrandBias(config);
            completed += result.victimCompleted;
            biased += result.biased;
        }
        EXPECT_EQ(completed, 8u) << "desired " << desired;
        EXPECT_GE(biased, 7u) << "desired " << desired;
    }
}

// ---------------------------------------------------------------------
// §7.1 (end): branch mispredictions as bounded replay handles.
// ---------------------------------------------------------------------

TEST(MispredictReplay, PrimedBranchesAmplifyExecutions)
{
    for (unsigned branches : {1u, 4u, 8u}) {
        MispredictReplayConfig primed;
        primed.branches = branches;
        primed.primeToMispredict = true;
        const auto amplified = runMispredictReplay(primed);

        MispredictReplayConfig benign = primed;
        benign.primeToMispredict = false;
        const auto baseline = runMispredictReplay(benign);

        EXPECT_TRUE(amplified.victimCompleted);
        EXPECT_TRUE(baseline.victimCompleted);
        // Correctly-primed predictor: one execution, no mispredicts.
        EXPECT_EQ(baseline.mispredicts, 0u) << branches;
        EXPECT_EQ(baseline.transmitExecutions, 1u) << branches;
        // Adversarially primed: every branch mispredicts exactly once
        // (2-bit counters flip after one wrong outcome).
        EXPECT_EQ(amplified.mispredicts, branches) << branches;
        // Each squash re-fetches the sensitive load; it re-executes in
        // every window long enough for it to issue — at least one
        // extra time, at most once per mispredict.  (With many
        // branches the inter-squash windows shrink below the load's
        // issue delay, so the bound is not always met with equality.)
        EXPECT_GT(amplified.transmitExecutions,
                  baseline.transmitExecutions)
            << branches;
        EXPECT_LE(amplified.transmitExecutions, branches + 1)
            << branches;
        if (branches == 1) {
            EXPECT_EQ(amplified.transmitExecutions, 2u);
        }
        EXPECT_TRUE(amplified.residueObserved);
    }
}
