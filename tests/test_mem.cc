/**
 * @file
 * Unit and property tests for src/mem: physical memory, the
 * set-associative cache, and the three-level hierarchy.
 */

#include <gtest/gtest.h>

#include <list>
#include <map>
#include <vector>

#include "common/logging.hh"
#include "common/random.hh"
#include "mem/cache.hh"
#include "mem/hierarchy.hh"
#include "mem/phys_mem.hh"

using namespace uscope;
using mem::Cache;
using mem::Hierarchy;
using mem::HitLevel;
using mem::MemConfig;
using mem::PhysMem;

// ---------------------------------------------------------------------
// PhysMem
// ---------------------------------------------------------------------

TEST(PhysMem, ReadWriteWidths)
{
    PhysMem mem;
    mem.write64(0x1000, 0x1122334455667788ull);
    EXPECT_EQ(mem.read64(0x1000), 0x1122334455667788ull);
    EXPECT_EQ(mem.read32(0x1000), 0x55667788u);
    EXPECT_EQ(mem.read8(0x1000), 0x88u);
    EXPECT_EQ(mem.read8(0x1007), 0x11u);

    mem.write8(0x1003, 0xAB);
    EXPECT_EQ(mem.read64(0x1000), 0x11223344AB667788ull);
}

TEST(PhysMem, UntouchedMemoryReadsZero)
{
    PhysMem mem;
    EXPECT_EQ(mem.read64(0x9999000), 0u);
    EXPECT_EQ(mem.pagesAllocated(), 0u);
}

TEST(PhysMem, CrossPageBulkCopy)
{
    PhysMem mem;
    std::vector<std::uint8_t> data(3 * pageSize);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i * 7);

    const PAddr base = 5 * pageSize - 100;  // straddles boundaries
    mem.writeBytes(base, data.data(), data.size());

    std::vector<std::uint8_t> back(data.size());
    mem.readBytes(base, back.data(), back.size());
    EXPECT_EQ(data, back);
}

TEST(PhysMem, CrossPageScalar)
{
    PhysMem mem;
    mem.write64(pageSize - 4, 0xAABBCCDDEEFF0011ull);
    EXPECT_EQ(mem.read64(pageSize - 4), 0xAABBCCDDEEFF0011ull);
    EXPECT_EQ(mem.read32(pageSize), 0xAABBCCDDu);
}

TEST(PhysMem, OutOfBoundsPanics)
{
    PhysMem mem(1 << 20);
    EXPECT_THROW(mem.read64((1 << 20) - 4), SimPanic);
    EXPECT_THROW(mem.write64(1 << 20, 1), SimPanic);
    EXPECT_NO_THROW(mem.write64((1 << 20) - 8, 1));
}

TEST(PhysMem, ZeroPageClears)
{
    PhysMem mem;
    mem.write64(0x2000, 0xFFFF);
    mem.zeroPage(2);
    EXPECT_EQ(mem.read64(0x2000), 0u);
}

// ---------------------------------------------------------------------
// Cache
// ---------------------------------------------------------------------

TEST(CacheTest, MissThenHit)
{
    Cache cache("c", 4096, 4);
    EXPECT_FALSE(cache.access(0x1000));
    cache.insert(0x1000);
    EXPECT_TRUE(cache.access(0x1000));
    EXPECT_TRUE(cache.access(0x103F));   // same line
    EXPECT_FALSE(cache.access(0x1040));  // next line
    EXPECT_EQ(cache.stats().hits, 2u);
    EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(CacheTest, LruEviction)
{
    // 4 sets x 2 ways; lines stride numSets*64 = 256 to share a set.
    Cache cache("c", 4 * 2 * 64, 2);
    ASSERT_EQ(cache.numSets(), 4u);
    const PAddr a = 0x0;
    const PAddr b = 0x400;
    const PAddr c = 0x800;
    ASSERT_EQ(cache.setIndex(a), cache.setIndex(b));
    ASSERT_EQ(cache.setIndex(a), cache.setIndex(c));

    cache.insert(a);
    cache.insert(b);
    cache.access(a);               // a is now MRU
    const auto evicted = cache.insert(c);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(*evicted, b);        // b was LRU
    EXPECT_TRUE(cache.contains(a));
    EXPECT_TRUE(cache.contains(c));
    EXPECT_FALSE(cache.contains(b));
}

TEST(CacheTest, InsertExistingIsTouch)
{
    Cache cache("c", 4 * 2 * 64, 2);
    cache.insert(0x0);
    cache.insert(0x400);
    cache.insert(0x0);             // touch, not duplicate
    const auto evicted = cache.insert(0x800);
    EXPECT_EQ(*evicted, 0x400u);
    EXPECT_EQ(cache.occupancy(), 2u);
}

TEST(CacheTest, InvalidateAndOccupancy)
{
    Cache cache("c", 4096, 4);
    cache.insert(0x1000);
    cache.insert(0x2000);
    EXPECT_EQ(cache.occupancy(), 2u);
    EXPECT_TRUE(cache.invalidate(0x1000));
    EXPECT_FALSE(cache.invalidate(0x1000));
    EXPECT_EQ(cache.occupancy(), 1u);
    cache.invalidateAll();
    EXPECT_EQ(cache.occupancy(), 0u);
}

TEST(CacheTest, BadGeometryIsFatal)
{
    EXPECT_THROW(Cache("c", 1000, 4), SimFatal);
    EXPECT_THROW(Cache("c", 4096, 0), SimFatal);
    EXPECT_THROW(Cache("c", 3 * 64 * 4, 4), SimFatal);  // 3 sets
}

/**
 * Property: the Cache agrees with a reference LRU model over random
 * access/insert/invalidate traces, across geometries.
 */
class CacheModelTest
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
};

TEST_P(CacheModelTest, AgreesWithReferenceLru)
{
    const auto [sets, assoc] = GetParam();
    Cache cache("c", std::uint64_t{sets} * assoc * 64, assoc);
    // Reference: per-set list of lines, front = MRU.
    std::map<unsigned, std::list<std::uint64_t>> model;

    Rng rng(1000 + sets * 10 + assoc);
    for (int step = 0; step < 5000; ++step) {
        const PAddr addr = rng.below(sets * 8) * lineSize;
        const unsigned set = cache.setIndex(addr);
        auto &mset = model[set];
        const PAddr line = lineBase(addr);
        const auto it = std::find(mset.begin(), mset.end(), line);

        const unsigned op = static_cast<unsigned>(rng.below(4));
        if (op == 0) {  // access
            const bool model_hit = it != mset.end();
            EXPECT_EQ(cache.access(addr), model_hit);
            if (model_hit)
                mset.splice(mset.begin(), mset, it);
        } else if (op <= 2) {  // insert
            cache.insert(addr);
            if (it != mset.end()) {
                mset.splice(mset.begin(), mset, it);
            } else {
                mset.push_front(line);
                if (mset.size() > assoc)
                    mset.pop_back();
            }
        } else {  // invalidate
            const bool model_present = it != mset.end();
            EXPECT_EQ(cache.invalidate(addr), model_present);
            if (model_present)
                mset.erase(it);
        }
        EXPECT_EQ(cache.contains(addr),
                  std::find(mset.begin(), mset.end(), line) !=
                      mset.end());
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheModelTest,
    ::testing::Values(std::make_tuple(1u, 1u), std::make_tuple(1u, 8u),
                      std::make_tuple(4u, 2u), std::make_tuple(16u, 4u),
                      std::make_tuple(64u, 8u)));

// ---------------------------------------------------------------------
// Hierarchy
// ---------------------------------------------------------------------

TEST(HierarchyTest, MissGoesToDramThenHitsL1)
{
    Hierarchy hier;
    const auto first = hier.access(0x10000);
    EXPECT_EQ(first.level, HitLevel::Dram);
    const auto second = hier.access(0x10000);
    EXPECT_EQ(second.level, HitLevel::L1);
    EXPECT_EQ(second.latency, hier.config().l1Latency);
}

TEST(HierarchyTest, LatenciesStrictlyOrdered)
{
    Hierarchy hier;
    EXPECT_LT(hier.latencyFor(HitLevel::L1),
              hier.latencyFor(HitLevel::L2));
    EXPECT_LT(hier.latencyFor(HitLevel::L2),
              hier.latencyFor(HitLevel::L3));
    EXPECT_LT(hier.latencyFor(HitLevel::L3),
              hier.latencyFor(HitLevel::Dram));
}

TEST(HierarchyTest, DramJitterBounded)
{
    Hierarchy hier;
    const Cycles base = hier.config().dramLatency;
    const Cycles jitter = hier.config().dramJitter;
    for (int i = 0; i < 200; ++i) {
        const auto access = hier.access(
            0x100000 + static_cast<std::uint64_t>(i) * lineSize);
        ASSERT_EQ(access.level, HitLevel::Dram);
        EXPECT_GE(access.latency, base - jitter);
        EXPECT_LE(access.latency, base + jitter);
    }
}

TEST(HierarchyTest, InstallAtEachLevel)
{
    Hierarchy hier;
    for (HitLevel level : {HitLevel::L1, HitLevel::L2, HitLevel::L3,
                           HitLevel::Dram}) {
        const PAddr addr = 0x40000;
        hier.installAt(addr, level);
        EXPECT_EQ(hier.peekLevel(addr), level);
        const auto access = hier.access(addr);
        EXPECT_EQ(access.level, level);
    }
}

TEST(HierarchyTest, FlushRemovesEverywhere)
{
    Hierarchy hier;
    hier.access(0x5000);
    ASSERT_EQ(hier.peekLevel(0x5000), HitLevel::L1);
    hier.flushLine(0x5000);
    EXPECT_EQ(hier.peekLevel(0x5000), HitLevel::Dram);
}

TEST(HierarchyTest, FlushRangeCoversPartialLines)
{
    Hierarchy hier;
    for (unsigned i = 0; i < 4; ++i)
        hier.access(0x6000 + i * lineSize);
    hier.flushRange(0x6010, 3 * lineSize);  // touches lines 0..3
    for (unsigned i = 0; i < 4; ++i)
        EXPECT_EQ(hier.peekLevel(0x6000 + i * lineSize),
                  HitLevel::Dram);
}

TEST(HierarchyTest, InclusiveL3BackInvalidates)
{
    // Tiny L3 so we can force its eviction: 1 set x 2 ways.
    MemConfig config;
    config.l1Size = 2 * 64;
    config.l1Assoc = 2;
    config.l2Size = 2 * 64;
    config.l2Assoc = 2;
    config.l3Size = 2 * 64;
    config.l3Assoc = 2;
    Hierarchy hier(config);

    hier.access(0x0);
    hier.access(0x1000);
    ASSERT_EQ(hier.peekLevel(0x0), HitLevel::L1);
    // Third distinct line evicts 0x0 from L3 -> must leave L1/L2 too.
    hier.access(0x2000);
    EXPECT_EQ(hier.peekLevel(0x0), HitLevel::Dram);
}

/** Property: inclusion (L1, L2 subsets of L3) holds on random traces. */
class HierarchyInclusionTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(HierarchyInclusionTest, InclusionInvariant)
{
    MemConfig config;
    config.l1Size = 4 * 2 * 64;
    config.l1Assoc = 2;
    config.l2Size = 8 * 2 * 64;
    config.l2Assoc = 2;
    config.l3Size = 8 * 4 * 64;
    config.l3Assoc = 4;
    Hierarchy hier(config, GetParam());

    Rng rng(GetParam() * 77 + 1);
    std::vector<PAddr> lines;
    for (unsigned i = 0; i < 128; ++i)
        lines.push_back(std::uint64_t{i} * lineSize);

    for (int step = 0; step < 4000; ++step) {
        const PAddr addr = lines[rng.below(lines.size())];
        if (rng.chance(0.8))
            hier.access(addr);
        else
            hier.flushLine(addr);

        if (step % 97 == 0) {
            for (PAddr line : lines) {
                if (hier.l1().contains(line) ||
                    hier.l2().contains(line)) {
                    ASSERT_TRUE(hier.l3().contains(line))
                        << "inclusion violated for line " << line;
                }
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HierarchyInclusionTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));
