/**
 * @file
 * Differential replay (DESIGN.md §15) bit-identity tests.
 *
 * The contract under test: a campaign that re-enters each replay
 * episode through a COW snapshot at the replay handle
 * (Recipe::differentialReplay + Microscope::restoreEpisode) produces
 * byte-identical results — stats, metrics, traces, fingerprints — to
 * one that re-simulates the prefix before every iteration.  The
 * identity must hold across fault plans (quiet and chaos), worker
 * counts, and fast-forward modes, because each of those is itself
 * fingerprint-invariant.
 *
 * Three recipe shapes cover the restore surface:
 *  - page-fault replay through the Microscope engine's episode
 *    snapshot protocol (the §4.1.4 loop);
 *  - a TSX victim and a control-flow (mispredict-shaped) victim
 *    driven through the generic Machine snapshot/restore/reseed
 *    pattern at a retired-instruction boundary, exercising mid-
 *    program restores of transactional and branch-predictor state.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <vector>

#include "attack/victims.hh"
#include "common/logging.hh"
#include "core/microscope.hh"
#include "cpu/program.hh"
#include "exp/campaign.hh"
#include "fault/plan.hh"
#include "os/machine.hh"

using namespace uscope;

namespace
{

constexpr std::uint64_t kIterations = 2;
constexpr Cycles kRunBudget = 5'000'000;

std::shared_ptr<const cpu::Program>
share(cpu::Program program)
{
    return std::make_shared<const cpu::Program>(std::move(program));
}

/** Victim with a handle page and a transmit page (cf. test_microscope). */
struct PfVictim
{
    os::Pid pid;
    VAddr handle;
    VAddr transmit;
    std::shared_ptr<const cpu::Program> program;
};

PfVictim
makePfVictim(os::Kernel &kernel)
{
    PfVictim victim;
    victim.pid = kernel.createProcess("victim");
    victim.handle = kernel.allocVirtual(victim.pid, pageSize);
    victim.transmit = kernel.allocVirtual(victim.pid, pageSize);

    cpu::ProgramBuilder b;
    b.movi(1, static_cast<std::int64_t>(victim.handle))
        .movi(2, static_cast<std::int64_t>(victim.transmit))
        .ld(3, 1, 0)    // replay handle
        .ld(4, 2, 0)    // transmit
        .halt();
    victim.program = share(b.build());
    return victim;
}

/**
 * One trial of the page-fault campaign: an episode with confidence 2
 * (replay 1 is the prefix, replay 2 the measured window), re-entered
 * kIterations times.  With @p diff the re-entry restores the engine's
 * episode snapshot; without it, the pre-arm snapshot is restored and
 * the prefix re-simulated — the two must be bit-identical.
 */
exp::TrialOutput
pageFaultTrial(const exp::TrialContext &ctx, bool diff)
{
    exp::TrialOutput out;
    os::Machine m(ctx.machine);
    auto &kernel = m.kernel();
    const PfVictim victim = makePfVictim(kernel);

    ms::Microscope scope(m);
    std::vector<std::uint64_t> latencies;
    {
        ms::AttackRecipe recipe;
        recipe.victim = victim.pid;
        recipe.replayHandle = victim.handle;
        recipe.monitorAddrs = {victim.transmit, victim.transmit + 64};
        recipe.confidence = 2;
        recipe.maxEpisodes = 1;
        recipe.differentialReplay = diff;
        recipe.onReplay = [&](const ms::ReplayEvent &event) {
            if (event.replayIndex >= 2) {
                for (const os::ProbeResult &probe :
                     scope.probeAllMonitorAddrs())
                    latencies.push_back(probe.latency);
            }
            return true;
        };
        recipe.beforeResume = [&](const ms::ReplayEvent &) {
            scope.primeMonitorAddrs();
        };
        scope.setRecipe(std::move(recipe));
    }

    // Pre-arm snapshot: the non-differential arm re-simulates the
    // prefix from here before every iteration.
    const os::Snapshot pre = m.snapshot();
    const ms::EpisodeState preState{scope.armed(),
                                    scope.replaysThisEpisode(),
                                    scope.stats()};
    const auto runPrefix = [&]() {
        scope.arm();
        kernel.startOnContext(victim.pid, 0, victim.program);
        const bool reached = m.runUntil(
            [&]() {
                return diff ? scope.episodeSnapshotPending()
                            : scope.replaysThisEpisode() >= 1;
            },
            kRunBudget);
        if (!reached)
            throw std::runtime_error("prefix never reached the re-arm");
    };
    runPrefix();
    if (diff)
        scope.takeEpisodeSnapshot();

    for (std::uint64_t i = 0; i < kIterations; ++i) {
        const std::uint64_t seed = exp::deriveReplaySeed(ctx.seed, i);
        if (diff) {
            scope.restoreEpisode(seed);
        } else {
            m.restoreFrom(pre);
            scope.adoptEpisodeState(preState);
            runPrefix();
            m.reseed(seed);
        }
        // The window: replay 2 measures and ends the episode; the
        // victim then retires its loads and halts.
        if (!m.runUntilHalted(0, kRunBudget))
            throw std::runtime_error("window never halted");
    }

    out.scope = scope.stats();
    out.simCycles = m.cycle();
    for (const std::uint64_t latency : latencies)
        out.metric.add(static_cast<double>(latency));

    exp::json::Value lat = exp::json::Value::array();
    for (const std::uint64_t latency : latencies)
        lat.push(latency);
    out.payload = exp::json::Value::object()
                      .set("latencies", std::move(lat))
                      .set("final_cycle", m.cycle())
                      .set("retired", m.core().stats(0).retired);

    obs::MetricRegistry registry;
    m.exportMetrics(registry);
    scope.exportMetrics(registry);
    out.metrics = registry.snapshot();
    if (m.observer().trace.enabled())
        out.trace = m.observer().trace.drain();
    return out;
}

enum class ManualKind { Tsx, ControlFlow };

/**
 * TSX / control-flow trial: the generic differential pattern without
 * the Microscope engine.  The prefix runs the victim to a retired-
 * instruction boundary; each iteration either restores the boundary
 * snapshot (@p diff) or restores the pre-start snapshot and re-runs
 * the prefix, then reseeds and runs the rest of the program.
 */
exp::TrialOutput
manualTrial(const exp::TrialContext &ctx, bool diff, ManualKind kind)
{
    exp::TrialOutput out;
    os::Machine m(ctx.machine);
    auto &kernel = m.kernel();
    const bool secret = (ctx.index & 1) != 0;
    const attack::VictimImage victim =
        kind == ManualKind::Tsx
            ? attack::buildTsxVictim(kernel, secret, /*max_retries=*/4)
            : attack::buildControlFlowVictim(kernel, secret);

    const os::Snapshot pre = m.snapshot();
    constexpr std::uint64_t kBoundary = 5;
    const auto runPrefix = [&]() {
        kernel.startOnContext(victim.pid, 0, victim.program);
        const bool reached = m.runUntil(
            [&]() { return m.core().stats(0).retired >= kBoundary; },
            kRunBudget);
        if (!reached)
            throw std::runtime_error("prefix never reached boundary");
    };
    runPrefix();
    os::Snapshot mid;
    if (diff)
        mid = m.snapshot();

    std::vector<std::uint64_t> latencies;
    for (std::uint64_t i = 0; i < kIterations; ++i) {
        const std::uint64_t seed = exp::deriveReplaySeed(ctx.seed, i);
        if (diff) {
            m.restoreFrom(mid);
        } else {
            m.restoreFrom(pre);
            runPrefix();
        }
        m.reseed(seed);
        if (!m.runUntilHalted(0, kRunBudget))
            throw std::runtime_error("window never halted");
        for (const VAddr va : {victim.transmitA, victim.transmitB}) {
            if (va != 0)
                latencies.push_back(kernel.timedProbe(victim.pid, va)
                                        .latency);
        }
    }

    out.simCycles = m.cycle();
    for (const std::uint64_t latency : latencies)
        out.metric.add(static_cast<double>(latency));

    const auto &stats = m.core().stats(0);
    exp::json::Value lat = exp::json::Value::array();
    for (const std::uint64_t latency : latencies)
        lat.push(latency);
    out.payload = exp::json::Value::object()
                      .set("latencies", std::move(lat))
                      .set("final_cycle", m.cycle())
                      .set("retired", stats.retired)
                      .set("mispredicts", stats.mispredicts)
                      .set("tx_aborts", stats.txAborts);

    obs::MetricRegistry registry;
    m.exportMetrics(registry);
    out.metrics = registry.snapshot();
    if (m.observer().trace.enabled())
        out.trace = m.observer().trace.drain();
    return out;
}

using TrialFn =
    std::function<exp::TrialOutput(const exp::TrialContext &, bool)>;

exp::CampaignResult
runMatrixCampaign(const char *name, const TrialFn &trial, bool diff,
                  bool chaos, bool ff, unsigned workers)
{
    exp::CampaignSpec spec;
    spec.name = name;
    spec.trials = 3;
    spec.masterSeed = 7;
    spec.workers = workers;
    spec.keepTrialResults = true;
    spec.machineFactory = [chaos, ff](const exp::TrialContext &) {
        os::MachineConfig config;
        config.fault =
            chaos ? fault::FaultPlan::chaos() : fault::FaultPlan{};
        config.fastForward = ff;
        return config;
    };
    spec.body = [&trial, diff](const exp::TrialContext &ctx) {
        return trial(ctx, diff);
    };
    return exp::runCampaign(std::move(spec));
}

/**
 * The matrix: one reference campaign (differential replay off), then
 * every (diff, fast-forward, workers) cell must fingerprint
 * identically.
 */
void
expectMatrixIdentity(const char *name, const TrialFn &trial, bool chaos)
{
    const exp::CampaignResult ref =
        runMatrixCampaign(name, trial, false, chaos, true, 1);
    ASSERT_EQ(ref.aggregate.ok, ref.trialCount)
        << "reference campaign must succeed, or the identity check "
           "is vacuous";
    const std::string want = exp::deterministicFingerprint(ref);

    struct Cell
    {
        bool diff;
        bool ff;
        unsigned workers;
    };
    const Cell cells[] = {
        {false, false, 4}, {true, true, 1},  {true, true, 2},
        {true, true, 4},   {true, false, 1}, {true, false, 2},
        {true, false, 4},
    };
    for (const Cell &cell : cells) {
        const exp::CampaignResult got = runMatrixCampaign(
            name, trial, cell.diff, chaos, cell.ff, cell.workers);
        EXPECT_EQ(exp::deterministicFingerprint(got), want)
            << "diff=" << cell.diff << " ff=" << cell.ff
            << " workers=" << cell.workers;
    }
}

exp::TrialContext
soloContext(std::uint64_t seed, bool trace)
{
    exp::TrialContext ctx;
    ctx.index = 0;
    ctx.seed = seed;
    ctx.machine = os::MachineConfig{};
    ctx.machine.seed = seed;
    ctx.machine.obs.traceEvents = trace;
    return ctx;
}

} // namespace

// --------------------------------------------------------------------
// The bit-identity matrix.
// --------------------------------------------------------------------

TEST(DiffReplayMatrix, PageFaultQuiet)
{
    expectMatrixIdentity("diff_pf_quiet", pageFaultTrial, false);
}

TEST(DiffReplayMatrix, PageFaultChaos)
{
    expectMatrixIdentity("diff_pf_chaos", pageFaultTrial, true);
}

TEST(DiffReplayMatrix, TsxQuiet)
{
    const TrialFn fn = [](const exp::TrialContext &ctx, bool diff) {
        return manualTrial(ctx, diff, ManualKind::Tsx);
    };
    expectMatrixIdentity("diff_tsx_quiet", fn, false);
}

TEST(DiffReplayMatrix, TsxChaos)
{
    const TrialFn fn = [](const exp::TrialContext &ctx, bool diff) {
        return manualTrial(ctx, diff, ManualKind::Tsx);
    };
    expectMatrixIdentity("diff_tsx_chaos", fn, true);
}

TEST(DiffReplayMatrix, ControlFlowQuiet)
{
    const TrialFn fn = [](const exp::TrialContext &ctx, bool diff) {
        return manualTrial(ctx, diff, ManualKind::ControlFlow);
    };
    expectMatrixIdentity("diff_cf_quiet", fn, false);
}

TEST(DiffReplayMatrix, ControlFlowChaos)
{
    const TrialFn fn = [](const exp::TrialContext &ctx, bool diff) {
        return manualTrial(ctx, diff, ManualKind::ControlFlow);
    };
    expectMatrixIdentity("diff_cf_chaos", fn, true);
}

// --------------------------------------------------------------------
// Engine protocol and component-level checks.
// --------------------------------------------------------------------

TEST(DiffReplayEngine, SnapshotProtocol)
{
    os::Machine m;
    auto &kernel = m.kernel();
    const PfVictim victim = makePfVictim(kernel);

    ms::Microscope scope(m);
    ms::AttackRecipe recipe;
    recipe.victim = victim.pid;
    recipe.replayHandle = victim.handle;
    recipe.confidence = 3;
    recipe.maxEpisodes = 1;
    recipe.differentialReplay = true;
    scope.setRecipe(std::move(recipe));

    // No snapshot point yet: taking one is a usage error.
    EXPECT_FALSE(scope.episodeSnapshotPending());
    EXPECT_THROW(scope.takeEpisodeSnapshot(), SimFatal);
    EXPECT_FALSE(scope.hasEpisodeSnapshot());

    scope.arm();
    kernel.startOnContext(victim.pid, 0, victim.program);
    ASSERT_TRUE(m.runUntil(
        [&]() { return scope.episodeSnapshotPending(); }, kRunBudget));
    EXPECT_EQ(scope.replaysThisEpisode(), 1u);

    scope.takeEpisodeSnapshot();
    EXPECT_FALSE(scope.episodeSnapshotPending());
    ASSERT_TRUE(scope.hasEpisodeSnapshot());
    EXPECT_EQ(scope.episodeState().replays, 1u);
    EXPECT_TRUE(scope.episodeState().armed);
    EXPECT_EQ(scope.episodeSnapshot().cycle(), m.cycle());

    // Re-entering the episode twice from the same seed is bit-
    // identical: same halt cycle, same stats.
    scope.restoreEpisode(/*seed=*/123);
    ASSERT_TRUE(m.runUntilHalted(0, kRunBudget));
    const Cycles first_halt = m.cycle();
    const std::uint64_t first_replays = scope.stats().totalReplays;

    scope.restoreEpisode(/*seed=*/123);
    ASSERT_TRUE(m.runUntilHalted(0, kRunBudget));
    EXPECT_EQ(m.cycle(), first_halt);
    EXPECT_EQ(scope.stats().totalReplays, first_replays);

    // Re-arming a fresh attack invalidates the held snapshot.
    scope.arm();
    EXPECT_FALSE(scope.hasEpisodeSnapshot());
    EXPECT_FALSE(scope.episodeSnapshotPending());
    scope.disarm();

    // And without the recipe knob, the engine never offers one.
    ms::AttackRecipe plain;
    plain.victim = victim.pid;
    plain.replayHandle = victim.handle;
    plain.confidence = 2;
    plain.maxEpisodes = 1;
    scope.setRecipe(std::move(plain));
    scope.arm();
    kernel.startOnContext(victim.pid, 0, victim.program);
    ASSERT_TRUE(m.runUntilHalted(0, kRunBudget));
    EXPECT_FALSE(scope.episodeSnapshotPending());
}

TEST(DiffReplayEngine, TraceBitIdentity)
{
    // With event tracing on, the differential arm's trace (restored
    // ring + window events) must equal the re-simulated arm's
    // (re-recorded prefix + window events), event for event.
    const exp::TrialOutput on = pageFaultTrial(soloContext(99, true),
                                               /*diff=*/true);
    const exp::TrialOutput off = pageFaultTrial(soloContext(99, true),
                                                /*diff=*/false);
    EXPECT_FALSE(on.trace.empty());
    EXPECT_EQ(on.trace.total, off.trace.total);
    EXPECT_EQ(on.trace.dropped, off.trace.dropped);
    ASSERT_EQ(on.trace.events.size(), off.trace.events.size());
    for (std::size_t i = 0; i < on.trace.events.size(); ++i) {
        const obs::Event &a = on.trace.events[i];
        const obs::Event &b = off.trace.events[i];
        EXPECT_EQ(a.cycle, b.cycle) << "event " << i;
        EXPECT_EQ(a.kind, b.kind) << "event " << i;
        EXPECT_EQ(a.a, b.a) << "event " << i;
        EXPECT_EQ(a.b, b.b) << "event " << i;
        EXPECT_EQ(a.addr, b.addr) << "event " << i;
    }
}

TEST(DiffReplayEngine, CrossInstanceRestoreMatchesInPlace)
{
    // An episode frozen on one Machine re-enters on a *different*
    // Machine instance (same structural config) bit-identically:
    // restoreEpisodeFrom carries the full simulated state, and
    // adoptEpisodeState re-wires the engine, so which host object
    // runs the window is invisible to the results.
    os::Machine a;
    ms::Microscope scopeA(a);
    const PfVictim victim = makePfVictim(a.kernel());

    const auto armOn = [&victim](ms::Microscope &scope) {
        ms::AttackRecipe recipe;
        recipe.victim = victim.pid;
        recipe.replayHandle = victim.handle;
        recipe.confidence = 2;
        recipe.maxEpisodes = 1;
        recipe.differentialReplay = true;
        scope.setRecipe(std::move(recipe));
    };
    armOn(scopeA);
    scopeA.arm();
    a.kernel().startOnContext(victim.pid, 0, victim.program);
    ASSERT_TRUE(a.runUntil(
        [&]() { return scopeA.episodeSnapshotPending(); }, kRunBudget));
    scopeA.takeEpisodeSnapshot();

    // In place: the originating machine runs the window.
    constexpr std::uint64_t kSeed = 77;
    scopeA.restoreEpisodeFrom(scopeA.episodeSnapshot(),
                              scopeA.episodeState(), kSeed);
    ASSERT_TRUE(a.runUntilHalted(0, kRunBudget));
    const Cycles wantHalt = a.cycle();
    const std::uint64_t wantReplays = scopeA.stats().totalReplays;
    const std::uint64_t wantRetired = a.core().stats(0).retired;

    // Cross-instance: a fresh machine that never built the victim
    // adopts the snapshot.  The recipe's pids and addresses are the
    // frozen machine's — the restore brings the matching processes.
    os::Machine b;
    ms::Microscope scopeB(b);
    armOn(scopeB);
    scopeB.restoreEpisodeFrom(scopeA.episodeSnapshot(),
                              scopeA.episodeState(), kSeed);
    ASSERT_TRUE(b.runUntilHalted(0, kRunBudget));
    EXPECT_EQ(b.cycle(), wantHalt);
    EXPECT_EQ(scopeB.stats().totalReplays, wantReplays);
    EXPECT_EQ(b.core().stats(0).retired, wantRetired);
}

TEST(DiffReplayEngine, PhysMemFastReshare)
{
    // Repeated restores from one frozen snapshot take PhysMem's
    // in-place dirty-page path after the first full share, and the
    // fast path is bit-identical to the full one.
    os::Machine m;
    auto &kernel = m.kernel();
    const PfVictim victim = makePfVictim(kernel);

    kernel.startOnContext(victim.pid, 0, victim.program);
    ASSERT_TRUE(m.runUntilHalted(0, kRunBudget));
    const os::Snapshot snap = m.snapshot();

    const std::uint64_t full_before = m.mem().sharesFull();
    m.restoreFrom(snap);  // first share: full (no tracked origin yet)
    EXPECT_EQ(m.mem().sharesFull(), full_before + 1);

    std::vector<Cycles> halts;
    for (int i = 0; i < 3; ++i) {
        const std::uint64_t fast_before = m.mem().sharesFast();
        m.restoreFrom(snap);
        EXPECT_EQ(m.mem().sharesFast(), fast_before + 1)
            << "restore " << i << " should take the fast path";
        m.reseed(1000 + static_cast<std::uint64_t>(i % 2));
        kernel.startOnContext(victim.pid, 0, victim.program);
        ASSERT_TRUE(m.runUntilHalted(0, kRunBudget));
        halts.push_back(m.cycle());
    }
    // Seeds 1000/1001/1000: runs 0 and 2 are bit-identical.
    EXPECT_EQ(halts[0], halts[2]);
}
