/**
 * @file
 * AES substrate correctness: FIPS-197 vectors, round trips for all
 * key sizes, access-trace consistency, and — critically for the §4.4
 * attack — the generated mini-ISA decryption producing bit-identical
 * results to the native reference when run on the simulated machine.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <set>

#include "crypto/aes.hh"
#include "crypto/aes_codegen.hh"
#include "os/machine.hh"

using namespace uscope;

namespace
{

std::array<std::uint8_t, 16>
hexBlock(const char *hex)
{
    std::array<std::uint8_t, 16> out{};
    for (unsigned i = 0; i < 16; ++i) {
        unsigned byte = 0;
        std::sscanf(hex + 2 * i, "%2x", &byte);
        out[i] = static_cast<std::uint8_t>(byte);
    }
    return out;
}

} // namespace

TEST(Aes, Fips197Aes128Vector)
{
    // FIPS-197 Appendix C.1.
    const auto key = hexBlock("000102030405060708090a0b0c0d0e0f");
    const auto pt = hexBlock("00112233445566778899aabbccddeeff");
    const auto expect = hexBlock("69c4e0d86a7b0430d8cdb78070b4c55a");

    crypto::AesKey enc(key.data(), 128, false);
    std::uint8_t ct[16];
    crypto::encryptBlock(enc, pt.data(), ct);
    EXPECT_EQ(0, std::memcmp(ct, expect.data(), 16));

    crypto::AesKey dec(key.data(), 128, true);
    std::uint8_t back[16];
    crypto::decryptBlock(dec, ct, back);
    EXPECT_EQ(0, std::memcmp(back, pt.data(), 16));
}

TEST(Aes, Fips197Aes192And256Vectors)
{
    // FIPS-197 Appendix C.2 / C.3.
    const auto pt = hexBlock("00112233445566778899aabbccddeeff");
    {
        std::array<std::uint8_t, 24> key{};
        for (unsigned i = 0; i < 24; ++i)
            key[i] = static_cast<std::uint8_t>(i);
        const auto expect =
            hexBlock("dda97ca4864cdfe06eaf70a0ec0d7191");
        crypto::AesKey enc(key.data(), 192, false);
        std::uint8_t ct[16];
        crypto::encryptBlock(enc, pt.data(), ct);
        EXPECT_EQ(0, std::memcmp(ct, expect.data(), 16));
        EXPECT_EQ(enc.rounds(), 12u);
    }
    {
        std::array<std::uint8_t, 32> key{};
        for (unsigned i = 0; i < 32; ++i)
            key[i] = static_cast<std::uint8_t>(i);
        const auto expect =
            hexBlock("8ea2b7ca516745bfeafc49904b496089");
        crypto::AesKey enc(key.data(), 256, false);
        std::uint8_t ct[16];
        crypto::encryptBlock(enc, pt.data(), ct);
        EXPECT_EQ(0, std::memcmp(ct, expect.data(), 16));
        EXPECT_EQ(enc.rounds(), 14u);
    }
}

TEST(Aes, RoundTripAllKeySizes)
{
    std::array<std::uint8_t, 32> key{};
    for (unsigned i = 0; i < 32; ++i)
        key[i] = static_cast<std::uint8_t>(i * 7 + 3);
    std::array<std::uint8_t, 16> pt{};
    for (unsigned i = 0; i < 16; ++i)
        pt[i] = static_cast<std::uint8_t>(i * 13 + 1);

    for (unsigned bits : {128u, 192u, 256u}) {
        crypto::AesKey enc(key.data(), bits, false);
        crypto::AesKey dec(key.data(), bits, true);
        std::uint8_t ct[16];
        std::uint8_t back[16];
        crypto::encryptBlock(enc, pt.data(), ct);
        crypto::decryptBlock(dec, ct, back);
        EXPECT_EQ(0, std::memcmp(back, pt.data(), 16))
            << "key size " << bits;
    }
}

TEST(Aes, TraceRecordsFourIndicesPerTablePerRound)
{
    const auto key = hexBlock("000102030405060708090a0b0c0d0e0f");
    const auto ct = hexBlock("69c4e0d86a7b0430d8cdb78070b4c55a");
    crypto::AesKey dec(key.data(), 128, true);
    const crypto::DecAccessTrace trace =
        crypto::traceDecryption(dec, ct.data());

    ASSERT_EQ(trace.indices.size(), 10u);
    for (unsigned r = 0; r < 9; ++r) {
        for (unsigned table = 0; table < 4; ++table)
            EXPECT_EQ(trace.indices[r][table].size(), 4u);
        EXPECT_TRUE(trace.indices[r][4].empty());
    }
    // Final round: 16 inverse-sbox lookups in slot 4.
    EXPECT_EQ(trace.indices[9][4].size(), 16u);
}

TEST(Aes, MiniIsaDecryptionMatchesReference)
{
    const auto key = hexBlock("000102030405060708090a0b0c0d0e0f");
    const auto pt = hexBlock("00112233445566778899aabbccddeeff");
    crypto::AesKey enc(key.data(), 128, false);
    crypto::AesKey dec(key.data(), 128, true);
    std::uint8_t ct[16];
    crypto::encryptBlock(enc, pt.data(), ct);

    os::Machine machine;
    auto &kernel = machine.kernel();
    const os::Pid pid = kernel.createProcess("aes-victim");
    const auto layout = crypto::setupAesVictim(kernel, pid, dec);
    crypto::loadCiphertext(kernel, pid, layout, ct);

    auto program = std::make_shared<const cpu::Program>(
        crypto::buildAesDecryptProgram(layout));
    kernel.startOnContext(pid, 0, program);
    ASSERT_TRUE(machine.runUntilHalted(0, 5'000'000));

    std::uint8_t out[16];
    crypto::readPlaintext(kernel, pid, layout, out);
    EXPECT_EQ(0, std::memcmp(out, pt.data(), 16));
}

TEST(Aes, MiniIsaTouchesExactlyTheTracedLines)
{
    const auto key = hexBlock("8899aabbccddeeff0011223344556677");
    const auto pt = hexBlock("0123456789abcdeffedcba9876543210");
    crypto::AesKey enc(key.data(), 128, false);
    crypto::AesKey dec(key.data(), 128, true);
    std::uint8_t ct[16];
    crypto::encryptBlock(enc, pt.data(), ct);

    os::Machine machine;
    auto &kernel = machine.kernel();
    const os::Pid pid = kernel.createProcess("aes-victim");
    const auto layout = crypto::setupAesVictim(kernel, pid, dec);
    crypto::loadCiphertext(kernel, pid, layout, ct);

    // Evict the whole Td1 table, run the decryption, and check the
    // set of Td1 lines left in the cache equals the traced ground
    // truth — the physical effect Figure 11 measures.
    const PAddr td1_pa = *kernel.translate(pid, layout.td1);
    kernel.primeRange(td1_pa, 1024);

    auto program = std::make_shared<const cpu::Program>(
        crypto::buildAesDecryptProgram(layout));
    kernel.startOnContext(pid, 0, program);
    ASSERT_TRUE(machine.runUntilHalted(0, 5'000'000));

    const auto trace = crypto::traceDecryption(dec, ct);
    std::set<unsigned> expected_lines;
    for (const auto &round : trace.indices)
        for (std::uint8_t index : round[1])
            expected_lines.insert(crypto::tableLineOf(index));

    std::set<unsigned> cached_lines;
    for (unsigned line = 0; line < 16; ++line) {
        if (machine.hierarchy().peekLevel(td1_pa + line * lineSize) !=
            mem::HitLevel::Dram) {
            cached_lines.insert(line);
        }
    }
    EXPECT_EQ(cached_lines, expected_lines);
}
