/**
 * @file
 * Unit tests for the MicroScope framework itself (src/core): the
 * Table-2 user API, recipe validation, the replay engine's episode
 * and pivot sequencing, walk-plan staging, and measurement helpers.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "core/microscope.hh"
#include "cpu/program.hh"
#include "os/machine.hh"

using namespace uscope;

namespace
{

std::shared_ptr<const cpu::Program>
share(cpu::Program program)
{
    return std::make_shared<const cpu::Program>(std::move(program));
}

/** Victim with a handle page, a pivot page, and a transmit page. */
struct TestVictim
{
    os::Pid pid;
    VAddr handle;
    VAddr pivot;
    VAddr transmit;
    std::shared_ptr<const cpu::Program> singleShot;  // no loop
    std::shared_ptr<const cpu::Program> loop3;       // 3 iterations
};

TestVictim
makeVictim(os::Kernel &kernel)
{
    TestVictim victim;
    victim.pid = kernel.createProcess("victim");
    victim.handle = kernel.allocVirtual(victim.pid, pageSize);
    victim.pivot = kernel.allocVirtual(victim.pid, pageSize);
    victim.transmit = kernel.allocVirtual(victim.pid, pageSize);

    {
        cpu::ProgramBuilder b;
        b.movi(1, static_cast<std::int64_t>(victim.handle))
            .movi(2, static_cast<std::int64_t>(victim.transmit))
            .ld(3, 1, 0)    // handle
            .ld(4, 2, 0)    // transmit
            .halt();
        victim.singleShot = share(b.build());
    }
    {
        cpu::ProgramBuilder b;
        b.movi(1, static_cast<std::int64_t>(victim.handle))
            .movi(2, static_cast<std::int64_t>(victim.pivot))
            .movi(3, static_cast<std::int64_t>(victim.transmit))
            .movi(5, 0)
            .movi(6, 3)
            .label("loop")
            .ld(7, 1, 0)          // handle
            .shli(8, 5, 6)
            .add(8, 3, 8)
            .ld(9, 8, 0)          // transmit: line i
            .ld(10, 2, 0)         // pivot
            .addi(5, 5, 1)
            .blt(5, 6, "loop")
            .halt();
        victim.loop3 = share(b.build());
    }
    return victim;
}

} // namespace

TEST(MicroscopeApi, Table2ProvideCalls)
{
    os::Machine machine;
    auto &kernel = machine.kernel();
    const TestVictim victim = makeVictim(kernel);

    ms::Microscope scope(machine);
    scope.provideReplayHandle(victim.pid, victim.handle);
    scope.providePivot(victim.pivot);
    scope.provideMonitorAddr(victim.transmit);
    scope.provideMonitorAddr(victim.transmit + 64);

    EXPECT_EQ(scope.recipe().victim, victim.pid);
    EXPECT_EQ(scope.recipe().replayHandle, victim.handle);
    EXPECT_EQ(*scope.recipe().pivot, victim.pivot);
    EXPECT_EQ(scope.recipe().monitorAddrs.size(), 2u);
}

TEST(MicroscopeApi, PivotMustBeOnDifferentPage)
{
    os::Machine machine;
    const TestVictim victim = makeVictim(machine.kernel());
    ms::Microscope scope(machine);
    scope.provideReplayHandle(victim.pid, victim.handle);
    EXPECT_THROW(scope.providePivot(victim.handle + 8), SimFatal);

    ms::AttackRecipe recipe;
    recipe.victim = victim.pid;
    recipe.replayHandle = victim.handle;
    recipe.pivot = victim.handle + 64;
    EXPECT_THROW(scope.setRecipe(std::move(recipe)), SimFatal);
}

TEST(MicroscopeApi, InitiatePageFaultArms)
{
    os::Machine machine;
    auto &kernel = machine.kernel();
    const TestVictim victim = makeVictim(kernel);
    ms::Microscope scope(machine);
    scope.provideReplayHandle(victim.pid, victim.handle);

    scope.initiatePageFault(victim.handle);
    EXPECT_FALSE(kernel.pageTable(victim.pid).isPresent(victim.handle));
    // The translation path must be cold: a fresh walk of 4 levels.
    const auto result = machine.mmu().translate(
        victim.handle, kernel.pcidOf(victim.pid),
        kernel.pageTable(victim.pid).root());
    EXPECT_TRUE(result.fault);
    EXPECT_EQ(result.walk.ptFetches, 4u);
}

TEST(MicroscopeApi, InitiatePageWalkLengthControl)
{
    os::Machine machine;
    auto &kernel = machine.kernel();
    const TestVictim victim = makeVictim(kernel);
    ms::Microscope scope(machine);
    scope.provideReplayHandle(victim.pid, victim.handle);

    for (unsigned length = 1; length <= 4; ++length) {
        scope.initiatePageWalk(victim.transmit, length,
                               mem::HitLevel::L2);
        const auto result = machine.mmu().translate(
            victim.transmit, kernel.pcidOf(victim.pid),
            kernel.pageTable(victim.pid).root());
        EXPECT_EQ(result.walk.ptFetches, length);
        // Each fetched level was staged at L2.
        const Cycles expected =
            machine.hierarchy().config().l2Latency * length;
        EXPECT_GE(result.walk.latency, expected);
        EXPECT_LT(result.walk.latency, expected + 20 * length);
    }
    EXPECT_THROW(scope.initiatePageWalk(victim.transmit, 0), SimFatal);
    EXPECT_THROW(scope.initiatePageWalk(victim.transmit, 5), SimFatal);
}

TEST(MicroscopeEngine, ConfidenceBoundsReplays)
{
    os::Machine machine;
    auto &kernel = machine.kernel();
    const TestVictim victim = makeVictim(kernel);

    ms::Microscope scope(machine);
    ms::AttackRecipe recipe;
    recipe.victim = victim.pid;
    recipe.replayHandle = victim.handle;
    recipe.confidence = 7;
    scope.setRecipe(std::move(recipe));
    scope.arm();
    kernel.startOnContext(victim.pid, 0, victim.singleShot);
    ASSERT_TRUE(machine.runUntilHalted(0, 10'000'000));

    EXPECT_EQ(scope.stats().totalReplays, 7u);
    EXPECT_EQ(scope.stats().episodes, 1u);
    EXPECT_FALSE(scope.armed());  // no pivot: disarms after episode 1
    // Victim made forward progress afterwards.
    EXPECT_TRUE(kernel.pageTable(victim.pid).isPresent(victim.handle));
}

TEST(MicroscopeEngine, OnReplayCanEndEpisodeEarly)
{
    os::Machine machine;
    auto &kernel = machine.kernel();
    const TestVictim victim = makeVictim(kernel);

    ms::Microscope scope(machine);
    ms::AttackRecipe recipe;
    recipe.victim = victim.pid;
    recipe.replayHandle = victim.handle;
    recipe.confidence = 100;
    recipe.onReplay = [](const ms::ReplayEvent &ev) {
        return ev.replayIndex < 3;  // stop after 3
    };
    scope.setRecipe(std::move(recipe));
    scope.arm();
    kernel.startOnContext(victim.pid, 0, victim.singleShot);
    ASSERT_TRUE(machine.runUntilHalted(0, 10'000'000));
    EXPECT_EQ(scope.stats().totalReplays, 3u);
}

TEST(MicroscopeEngine, PivotSingleStepsLoop)
{
    os::Machine machine;
    auto &kernel = machine.kernel();
    const TestVictim victim = makeVictim(kernel);

    std::vector<std::uint64_t> replays_per_episode;
    ms::Microscope scope(machine);
    ms::AttackRecipe recipe;
    recipe.victim = victim.pid;
    recipe.replayHandle = victim.handle;
    recipe.pivot = victim.pivot;
    recipe.confidence = 2;
    recipe.maxEpisodes = 3;
    recipe.onEpisodeEnd = [&](const ms::ReplayEvent &ev) {
        replays_per_episode.push_back(ev.replayIndex);
    };
    scope.setRecipe(std::move(recipe));
    scope.arm();
    kernel.startOnContext(victim.pid, 0, victim.loop3);
    ASSERT_TRUE(machine.runUntilHalted(0, 50'000'000));

    // 3 episodes (one per loop iteration) of 2 replays each, stepped
    // by 2 pivot faults between them.
    EXPECT_EQ(scope.stats().episodes, 3u);
    EXPECT_EQ(scope.stats().totalReplays, 6u);
    EXPECT_EQ(scope.stats().pivotFaults, 2u);
    EXPECT_EQ(replays_per_episode,
              (std::vector<std::uint64_t>{2, 2, 2}));
    EXPECT_FALSE(scope.armed());
    // Cleanly released: both pages present again.
    EXPECT_TRUE(kernel.pageTable(victim.pid).isPresent(victim.handle));
    EXPECT_TRUE(kernel.pageTable(victim.pid).isPresent(victim.pivot));
}

TEST(MicroscopeEngine, WalkPlanControlsWindowLatency)
{
    // Measure the wall-clock replay period under the longest and
    // shortest plans: the longest plan's faults take >1000 more
    // cycles of walk each.
    auto run_with_plan = [](const ms::PageWalkPlan &plan) {
        os::Machine machine;
        auto &kernel = machine.kernel();
        const TestVictim victim = makeVictim(kernel);
        ms::Microscope scope(machine);
        ms::AttackRecipe recipe;
        recipe.victim = victim.pid;
        recipe.replayHandle = victim.handle;
        recipe.confidence = 20;
        recipe.walkPlan = plan;
        scope.setRecipe(std::move(recipe));
        scope.arm();
        kernel.startOnContext(victim.pid, 0, victim.singleShot);
        machine.runUntilHalted(0, 10'000'000);
        return machine.cycle();
    };
    const Cycles slow = run_with_plan(ms::PageWalkPlan::longest());
    const Cycles fast = run_with_plan(ms::PageWalkPlan::shortest());
    // 20 replays x >1000 cycles of extra walk each.
    EXPECT_GT(slow, fast + 20 * 1000);
}

TEST(MicroscopeEngine, ForeignFaultsFallThrough)
{
    os::Machine machine;
    auto &kernel = machine.kernel();
    const TestVictim victim = makeVictim(kernel);
    // A second page the module does NOT own.
    const VAddr other = kernel.allocVirtual(victim.pid, pageSize);
    kernel.pageTable(victim.pid).setPresent(other, false);

    ms::Microscope scope(machine);
    ms::AttackRecipe recipe;
    recipe.victim = victim.pid;
    recipe.replayHandle = victim.handle;
    recipe.confidence = 2;
    scope.setRecipe(std::move(recipe));
    scope.arm();

    cpu::ProgramBuilder b;
    b.movi(1, static_cast<std::int64_t>(victim.handle))
        .movi(2, static_cast<std::int64_t>(other))
        .ld(3, 2, 0)   // foreign fault: default handler services it
        .ld(4, 1, 0)   // the armed handle
        .halt();
    kernel.startOnContext(victim.pid, 0, share(b.build()));
    ASSERT_TRUE(machine.runUntilHalted(0, 10'000'000));

    EXPECT_EQ(scope.stats().foreignFaults, 1u);
    EXPECT_EQ(scope.stats().totalReplays, 2u);
    EXPECT_TRUE(kernel.pageTable(victim.pid).isPresent(other));
}

TEST(MicroscopeEngine, DisarmRestoresPresentBits)
{
    os::Machine machine;
    auto &kernel = machine.kernel();
    const TestVictim victim = makeVictim(kernel);

    ms::Microscope scope(machine);
    ms::AttackRecipe recipe;
    recipe.victim = victim.pid;
    recipe.replayHandle = victim.handle;
    recipe.pivot = victim.pivot;
    scope.setRecipe(std::move(recipe));
    scope.arm();
    EXPECT_FALSE(kernel.pageTable(victim.pid).isPresent(victim.handle));
    scope.disarm();
    EXPECT_TRUE(kernel.pageTable(victim.pid).isPresent(victim.handle));
    EXPECT_TRUE(kernel.pageTable(victim.pid).isPresent(victim.pivot));
}

TEST(MicroscopeEngine, ArmWithoutRecipeIsFatal)
{
    os::Machine machine;
    ms::Microscope scope(machine);
    EXPECT_THROW(scope.arm(), SimFatal);
}

TEST(MicroscopeEngine, MonitorAddrProbesAndPriming)
{
    os::Machine machine;
    auto &kernel = machine.kernel();
    const TestVictim victim = makeVictim(kernel);

    ms::Microscope scope(machine);
    scope.provideReplayHandle(victim.pid, victim.handle);
    scope.provideMonitorAddr(victim.transmit);
    scope.provideMonitorAddr(victim.transmit + 64);

    scope.primeMonitorAddrs();
    auto probes = scope.probeAllMonitorAddrs();
    ASSERT_EQ(probes.size(), 2u);
    EXPECT_EQ(probes[0].level, mem::HitLevel::Dram);
    EXPECT_EQ(probes[1].level, mem::HitLevel::Dram);
    // Probing fetched them: the next probe hits.
    EXPECT_EQ(scope.probeMonitorAddr(0).level, mem::HitLevel::L1);
    EXPECT_THROW(scope.probeMonitorAddr(9), SimPanic);
}

TEST(MicroscopeEngine, ReplayedTransmitLeavesResidueEachReplay)
{
    os::Machine machine;
    auto &kernel = machine.kernel();
    const TestVictim victim = makeVictim(kernel);
    const PAddr transmit_pa =
        *kernel.translate(victim.pid, victim.transmit);

    unsigned residue_seen = 0;
    ms::Microscope scope(machine);
    ms::AttackRecipe recipe;
    recipe.victim = victim.pid;
    recipe.replayHandle = victim.handle;
    recipe.confidence = 5;
    recipe.onReplay = [&](const ms::ReplayEvent &ev) {
        if (ev.scope.kernel().timedProbePhys(transmit_pa).latency < 100)
            ++residue_seen;
        return true;
    };
    recipe.beforeResume = [&](const ms::ReplayEvent &ev) {
        ev.scope.kernel().flushPhysLine(transmit_pa);
    };
    scope.setRecipe(std::move(recipe));

    kernel.flushPhysLine(transmit_pa);
    scope.arm();
    kernel.startOnContext(victim.pid, 0, victim.singleShot);
    ASSERT_TRUE(machine.runUntilHalted(0, 10'000'000));
    // Every one of the 5 windows re-touched the transmit line even
    // though it was flushed in between: zero-noise denoising.
    EXPECT_EQ(residue_seen, 5u);
}
