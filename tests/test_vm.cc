/**
 * @file
 * Unit and property tests for src/vm: page tables, TLBs, the
 * page-walk cache, the hardware walker, and the MMU — including the
 * walk-duration tunability the MicroScope attack depends on.
 */

#include <gtest/gtest.h>

#include <map>

#include "common/logging.hh"
#include "common/random.hh"
#include "mem/hierarchy.hh"
#include "mem/phys_mem.hh"
#include "vm/frame_alloc.hh"
#include "vm/mmu.hh"
#include "vm/page_table.hh"
#include "vm/paging.hh"
#include "vm/pwc.hh"
#include "vm/tlb.hh"
#include "vm/walker.hh"

using namespace uscope;
using namespace uscope::vm;

namespace
{

/** Common fixture: memory + allocator + one page table. */
struct VmRig
{
    mem::PhysMem mem;
    FrameAllocator frames{1, 100000};
    PageTable table{mem, frames};
    mem::Hierarchy hierarchy;
    Pwc pwc;
    Walker walker{mem, hierarchy, pwc};
};

} // namespace

// ---------------------------------------------------------------------
// FrameAllocator
// ---------------------------------------------------------------------

TEST(FrameAlloc, SequentialThenReuse)
{
    FrameAllocator frames(10, 5);
    const Ppn a = frames.alloc();
    const Ppn b = frames.alloc();
    EXPECT_EQ(a, 10u);
    EXPECT_EQ(b, 11u);
    frames.free(a);
    EXPECT_EQ(frames.alloc(), a);  // LIFO reuse
    EXPECT_EQ(frames.framesInUse(), 2u);
}

TEST(FrameAlloc, ExhaustionIsFatal)
{
    FrameAllocator frames(0, 2);
    frames.alloc();
    frames.alloc();
    EXPECT_THROW(frames.alloc(), SimFatal);
}

TEST(FrameAlloc, DoubleFreePanics)
{
    FrameAllocator frames(0, 2);
    const Ppn a = frames.alloc();
    frames.free(a);
    EXPECT_THROW(frames.free(a), SimPanic);
}

// ---------------------------------------------------------------------
// Paging helpers
// ---------------------------------------------------------------------

TEST(Paging, LevelIndices)
{
    // VA with distinct indices per level.
    const VAddr va = (std::uint64_t{1} << 39) |   // PGD index 1
                     (std::uint64_t{2} << 30) |   // PUD index 2
                     (std::uint64_t{3} << 21) |   // PMD index 3
                     (std::uint64_t{4} << 12);    // PTE index 4
    EXPECT_EQ(levelIndex(va, Level::Pgd), 1u);
    EXPECT_EQ(levelIndex(va, Level::Pud), 2u);
    EXPECT_EQ(levelIndex(va, Level::Pmd), 3u);
    EXPECT_EQ(levelIndex(va, Level::Pte), 4u);
}

TEST(Paging, EntryRoundTrip)
{
    const std::uint64_t entry =
        makeEntry(0x12345, pte::present | pte::writable);
    EXPECT_EQ(entryPpn(entry), 0x12345u);
    EXPECT_TRUE(entry & pte::present);
    EXPECT_TRUE(entry & pte::writable);
    EXPECT_FALSE(entry & pte::user);
}

TEST(Paging, LevelNames)
{
    EXPECT_STREQ(levelName(Level::Pgd), "PGD");
    EXPECT_STREQ(levelName(Level::Pte), "PTE");
}

// ---------------------------------------------------------------------
// PageTable
// ---------------------------------------------------------------------

TEST(PageTableTest, MapAndLookup)
{
    VmRig rig;
    rig.table.map(0x10, 0x999, pte::present | pte::writable);
    const auto ppn = rig.table.lookupPpn(0x10ull << pageShift);
    ASSERT_TRUE(ppn.has_value());
    EXPECT_EQ(*ppn, 0x999u);
    EXPECT_FALSE(rig.table.lookupPpn(0x11ull << pageShift).has_value());
}

TEST(PageTableTest, SoftwareWalkReportsFourLevels)
{
    VmRig rig;
    const VAddr va = 0x12345000;
    rig.table.map(pageNumber(va), 7, pte::present);
    const SoftWalkResult walk = rig.table.softwareWalk(va);
    EXPECT_TRUE(walk.mapped);
    EXPECT_EQ(walk.levelsValid, 4u);
    // The four entry addresses must be distinct physical locations.
    for (unsigned i = 0; i < 4; ++i)
        for (unsigned j = i + 1; j < 4; ++j)
            EXPECT_NE(walk.entryAddrs[i], walk.entryAddrs[j]);
    EXPECT_EQ(entryPpn(walk.leafEntry), 7u);
}

TEST(PageTableTest, PresentBitToggle)
{
    VmRig rig;
    const VAddr va = 0x5000;
    rig.table.map(pageNumber(va), 3, pte::present);
    EXPECT_TRUE(rig.table.isPresent(va));
    rig.table.setPresent(va, false);
    EXPECT_FALSE(rig.table.isPresent(va));
    // The mapping (frame number) survives — key MicroScope property.
    EXPECT_EQ(*rig.table.lookupPpn(va), 3u);
    rig.table.setPresent(va, true);
    EXPECT_TRUE(rig.table.isPresent(va));
}

TEST(PageTableTest, AccessedBitSpmStyle)
{
    VmRig rig;
    const VAddr va = 0x7000;
    rig.table.map(pageNumber(va), 3, pte::present);
    EXPECT_FALSE(rig.table.testAndClearAccessed(va));
    rig.table.setAccessed(va, true);
    EXPECT_TRUE(rig.table.testAndClearAccessed(va));
    EXPECT_FALSE(rig.table.testAndClearAccessed(va));
}

TEST(PageTableTest, UnmapClearsLeaf)
{
    VmRig rig;
    const VAddr va = 0x8000;
    rig.table.map(pageNumber(va), 3, pte::present);
    rig.table.unmap(pageNumber(va));
    EXPECT_FALSE(rig.table.lookupPpn(va).has_value());
}

TEST(PageTableTest, SharedUpperLevels)
{
    // Adjacent pages share PGD/PUD/PMD entries; only the PTE differs.
    VmRig rig;
    rig.table.map(0x100, 1, pte::present);
    rig.table.map(0x101, 2, pte::present);
    const auto walk_a = rig.table.softwareWalk(0x100ull << pageShift);
    const auto walk_b = rig.table.softwareWalk(0x101ull << pageShift);
    for (unsigned lvl = 0; lvl < 3; ++lvl)
        EXPECT_EQ(walk_a.entryAddrs[lvl], walk_b.entryAddrs[lvl]);
    EXPECT_NE(walk_a.entryAddrs[3], walk_b.entryAddrs[3]);
}

/** Property: random map/unmap sequences match a reference map. */
TEST(PageTableTest, RandomAgainstReferenceModel)
{
    VmRig rig;
    std::map<Vpn, Ppn> model;
    Rng rng(99);
    for (int step = 0; step < 2000; ++step) {
        const Vpn vpn = rng.below(64) + (rng.below(4) << 18);
        if (rng.chance(0.7)) {
            const Ppn ppn = 1000 + rng.below(1000);
            rig.table.map(vpn, ppn, pte::present);
            model[vpn] = ppn;
        } else {
            rig.table.unmap(vpn);
            model.erase(vpn);
        }
        const Vpn check = rng.below(64) + (rng.below(4) << 18);
        const auto got = rig.table.lookupPpn(check << pageShift);
        const auto it = model.find(check);
        if (it == model.end()) {
            EXPECT_FALSE(got.has_value());
        } else {
            ASSERT_TRUE(got.has_value());
            EXPECT_EQ(*got, it->second);
        }
    }
}

// ---------------------------------------------------------------------
// TLB
// ---------------------------------------------------------------------

TEST(TlbTest, InsertLookupInvalidate)
{
    Tlb tlb("t", 16, 4);
    EXPECT_FALSE(tlb.lookup(5, 1).has_value());
    tlb.insert(5, 1, {0x42, pte::present});
    const auto entry = tlb.lookup(5, 1);
    ASSERT_TRUE(entry.has_value());
    EXPECT_EQ(entry->ppn, 0x42u);
    EXPECT_TRUE(tlb.invalidate(5, 1));
    EXPECT_FALSE(tlb.lookup(5, 1).has_value());
}

TEST(TlbTest, PcidIsolation)
{
    Tlb tlb("t", 16, 4);
    tlb.insert(5, 1, {0x42, 0});
    tlb.insert(5, 2, {0x43, 0});
    EXPECT_EQ(tlb.lookup(5, 1)->ppn, 0x42u);
    EXPECT_EQ(tlb.lookup(5, 2)->ppn, 0x43u);
    tlb.invalidatePcid(1);
    EXPECT_FALSE(tlb.lookup(5, 1).has_value());
    EXPECT_TRUE(tlb.lookup(5, 2).has_value());
}

TEST(TlbTest, SetLruEviction)
{
    Tlb tlb("t", 8, 2);  // 4 sets x 2 ways; vpns stride 4 share a set
    tlb.insert(0, 1, {1, 0});
    tlb.insert(4, 1, {2, 0});
    tlb.lookup(0, 1);            // 0 is MRU
    tlb.insert(8, 1, {3, 0});    // evicts vpn 4
    EXPECT_TRUE(tlb.peek(0, 1).has_value());
    EXPECT_FALSE(tlb.peek(4, 1).has_value());
    EXPECT_TRUE(tlb.peek(8, 1).has_value());
}

TEST(TlbTest, PeekDoesNotDisturbLru)
{
    Tlb tlb("t", 8, 2);
    tlb.insert(0, 1, {1, 0});
    tlb.insert(4, 1, {2, 0});
    tlb.peek(0, 1);              // must NOT refresh vpn 0
    tlb.insert(8, 1, {3, 0});    // evicts vpn 0 (still LRU)
    EXPECT_FALSE(tlb.peek(0, 1).has_value());
    EXPECT_TRUE(tlb.peek(4, 1).has_value());
}

TEST(TlbTest, StatsCount)
{
    Tlb tlb("t", 16, 4);
    tlb.lookup(1, 1);
    tlb.insert(1, 1, {9, 0});
    tlb.lookup(1, 1);
    tlb.invalidate(1, 1);
    EXPECT_EQ(tlb.stats().misses, 1u);
    EXPECT_EQ(tlb.stats().hits, 1u);
    EXPECT_EQ(tlb.stats().invalidations, 1u);
}

// ---------------------------------------------------------------------
// PWC
// ---------------------------------------------------------------------

TEST(PwcTest, DeepestLevelPreferred)
{
    Pwc pwc(8);
    const VAddr va = 0x12345678000;
    pwc.insert(va, 1, Level::Pgd, 0x1000);
    pwc.insert(va, 1, Level::Pmd, 0x3000);
    pwc.insert(va, 1, Level::Pud, 0x2000);
    const auto hit = pwc.lookup(va, 1);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->level, Level::Pmd);
    EXPECT_EQ(hit->tablePa, 0x3000u);
}

TEST(PwcTest, PrefixSharingAcrossNeighbours)
{
    // Two pages in the same 2 MiB region share the PMD entry.
    Pwc pwc(8);
    const VAddr va_a = 0x40000000;
    const VAddr va_b = va_a + pageSize;
    pwc.insert(va_a, 1, Level::Pmd, 0x7000);
    const auto hit = pwc.lookup(va_b, 1);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->tablePa, 0x7000u);
}

TEST(PwcTest, InvalidateByVa)
{
    Pwc pwc(8);
    const VAddr va = 0x40000000;
    pwc.insert(va, 1, Level::Pgd, 0x1000);
    pwc.insert(va, 1, Level::Pmd, 0x3000);
    pwc.invalidate(va, 1);
    EXPECT_FALSE(pwc.lookup(va, 1).has_value());
}

TEST(PwcTest, CapacityLruBound)
{
    Pwc pwc(2);
    pwc.insert(0x0ull, 1, Level::Pmd, 0x1000);
    pwc.insert(0x40000000ull, 1, Level::Pmd, 0x2000);
    pwc.insert(0x80000000ull, 1, Level::Pmd, 0x3000);
    EXPECT_EQ(pwc.occupancy(), 2u);
    EXPECT_FALSE(pwc.lookup(0x0ull, 1).has_value());  // oldest dropped
}

TEST(PwcTest, PcidSeparation)
{
    Pwc pwc(8);
    pwc.insert(0x1000, 1, Level::Pmd, 0xA000);
    EXPECT_FALSE(pwc.lookup(0x1000, 2).has_value());
}

// ---------------------------------------------------------------------
// Walker
// ---------------------------------------------------------------------

TEST(WalkerTest, SuccessfulWalkMatchesSoftwareWalk)
{
    VmRig rig;
    const VAddr va = 0x1234000;
    rig.table.map(pageNumber(va), 0x77, pte::present | pte::user);
    const WalkResult walk = rig.walker.walk(va, 1, rig.table.root());
    EXPECT_FALSE(walk.fault);
    EXPECT_EQ(walk.entry.ppn, 0x77u);
    EXPECT_EQ(walk.ptFetches, 4u);
    EXPECT_TRUE(walk.entry.flags & pte::user);
}

TEST(WalkerTest, NonPresentLeafFaults)
{
    VmRig rig;
    const VAddr va = 0x1234000;
    rig.table.map(pageNumber(va), 0x77, 0 /* not present */);
    const WalkResult walk = rig.walker.walk(va, 1, rig.table.root());
    EXPECT_TRUE(walk.fault);
    EXPECT_EQ(walk.ptFetches, 4u);
}

TEST(WalkerTest, UnmappedFaultsEarly)
{
    VmRig rig;
    const WalkResult walk =
        rig.walker.walk(0x5000, 1, rig.table.root());
    EXPECT_TRUE(walk.fault);
    EXPECT_EQ(walk.ptFetches, 1u);  // PGD hole
}

TEST(WalkerTest, PwcSkipsUpperLevels)
{
    VmRig rig;
    const VAddr va = 0x1234000;
    rig.table.map(pageNumber(va), 0x77, pte::present);
    rig.walker.walk(va, 1, rig.table.root());  // fills PWC
    const WalkResult second = rig.walker.walk(va, 1, rig.table.root());
    EXPECT_EQ(second.ptFetches, 1u);
    EXPECT_EQ(second.startLevel, Level::Pte);
}

TEST(WalkerTest, LatencyFollowsEntryPlacement)
{
    // The §4.1.2 tunability claim at walker granularity: a walk whose
    // entries all sit in DRAM takes > 1000 cycles; all-L1 takes a few
    // tens.
    VmRig rig;
    const VAddr va = 0x1234000;
    rig.table.map(pageNumber(va), 0x77, pte::present);
    const SoftWalkResult soft = rig.table.softwareWalk(va);

    rig.pwc.invalidateAll();
    for (unsigned lvl = 0; lvl < 4; ++lvl)
        rig.hierarchy.flushLine(soft.entryAddrs[lvl]);
    const WalkResult slow = rig.walker.walk(va, 1, rig.table.root());
    EXPECT_GT(slow.latency, 1000u);

    rig.pwc.invalidateAll();
    for (unsigned lvl = 0; lvl < 4; ++lvl)
        rig.hierarchy.installAt(soft.entryAddrs[lvl],
                                mem::HitLevel::L1);
    const WalkResult fast = rig.walker.walk(va, 1, rig.table.root());
    EXPECT_LT(fast.latency, 50u);
    EXPECT_FALSE(fast.fault);
    EXPECT_EQ(fast.entry.ppn, slow.entry.ppn);
}

TEST(WalkerTest, FaultingWalkStillFillsPwc)
{
    // Real MMUs cache upper levels even when the leaf faults; this is
    // why MicroScope re-flushes the PWC before every replay.
    VmRig rig;
    const VAddr va = 0x1234000;
    rig.table.map(pageNumber(va), 0x77, 0);
    rig.walker.walk(va, 1, rig.table.root());
    EXPECT_TRUE(rig.pwc.lookup(va, 1).has_value());
}

// ---------------------------------------------------------------------
// MMU
// ---------------------------------------------------------------------

namespace
{

struct MmuRig
{
    mem::PhysMem mem;
    FrameAllocator frames{1, 100000};
    PageTable table{mem, frames};
    mem::Hierarchy hierarchy;
    Mmu mmu{mem, hierarchy};
};

} // namespace

TEST(MmuTest, TranslationPathsAndLatencies)
{
    MmuRig rig;
    const VAddr va = 0xABC000;
    rig.table.map(pageNumber(va), 0x55, pte::present);

    // First: full walk.
    const auto first = rig.mmu.translate(va + 0x123, 1,
                                         rig.table.root());
    EXPECT_FALSE(first.fault);
    EXPECT_TRUE(first.walked);
    EXPECT_EQ(first.paddr, (0x55ull << pageShift) | 0x123);

    // Second: L1 TLB hit, zero extra latency.
    const auto second = rig.mmu.translate(va, 1, rig.table.root());
    EXPECT_FALSE(second.walked);
    EXPECT_EQ(second.latency, 0u);

    // After an L1-only eviction... emulate via invlpg + reinsert into
    // L2 by translating, invalidating L1 only is internal; instead
    // verify invlpg forces a re-walk.
    rig.mmu.invlpg(va, 1);
    const auto third = rig.mmu.translate(va, 1, rig.table.root());
    EXPECT_TRUE(third.walked);
}

TEST(MmuTest, FaultDoesNotFillTlb)
{
    MmuRig rig;
    const VAddr va = 0xABC000;
    rig.table.map(pageNumber(va), 0x55, 0);
    const auto result = rig.mmu.translate(va, 1, rig.table.root());
    EXPECT_TRUE(result.fault);
    EXPECT_FALSE(rig.mmu.l1Tlb().peek(pageNumber(va), 1).has_value());
    EXPECT_FALSE(rig.mmu.l2Tlb().peek(pageNumber(va), 1).has_value());

    // Making it present and retrying succeeds and fills the TLBs.
    rig.table.setPresent(va, true);
    const auto retry = rig.mmu.translate(va, 1, rig.table.root());
    EXPECT_FALSE(retry.fault);
    EXPECT_TRUE(rig.mmu.l1Tlb().peek(pageNumber(va), 1).has_value());
}

TEST(MmuTest, FlushPwcForcesFullWalk)
{
    MmuRig rig;
    const VAddr va = 0xABC000;
    rig.table.map(pageNumber(va), 0x55, pte::present);
    rig.mmu.translate(va, 1, rig.table.root());
    rig.mmu.invlpg(va, 1);

    // PWC still primed: short re-walk.
    auto rewalk = rig.mmu.translate(va, 1, rig.table.root());
    EXPECT_EQ(rewalk.walk.ptFetches, 1u);

    rig.mmu.invlpg(va, 1);
    rig.mmu.flushPwc(va, 1);
    rewalk = rig.mmu.translate(va, 1, rig.table.root());
    EXPECT_EQ(rewalk.walk.ptFetches, 4u);
}

TEST(MmuTest, DistinctPcidsDoNotAlias)
{
    MmuRig rig;
    PageTable other(rig.mem, rig.frames);
    const VAddr va = 0xABC000;
    rig.table.map(pageNumber(va), 0x55, pte::present);
    other.map(pageNumber(va), 0x66, pte::present);

    const auto a = rig.mmu.translate(va, 1, rig.table.root());
    const auto b = rig.mmu.translate(va, 2, other.root());
    EXPECT_EQ(pageNumber(a.paddr), 0x55u);
    EXPECT_EQ(pageNumber(b.paddr), 0x66u);
    // And again from the TLB: still distinct.
    const auto a2 = rig.mmu.translate(va, 1, rig.table.root());
    EXPECT_EQ(pageNumber(a2.paddr), 0x55u);
    EXPECT_FALSE(a2.walked);
}

TEST(WalkerTest, SetsAccessedBitOnLeaf)
{
    VmRig rig;
    const VAddr va = 0x9000;
    rig.table.map(pageNumber(va), 3, pte::present);
    EXPECT_FALSE(rig.table.testAndClearAccessed(va));
    rig.walker.walk(va, 1, rig.table.root());
    // The walk set A; test-and-clear sees it exactly once (the SPM
    // monitoring primitive).
    EXPECT_TRUE(rig.table.testAndClearAccessed(va));
    EXPECT_FALSE(rig.table.testAndClearAccessed(va));
    rig.walker.walk(va, 1, rig.table.root());
    EXPECT_TRUE(rig.table.testAndClearAccessed(va));
}
