/**
 * @file
 * Deeper tests of the AES substrate: table structure invariants, key
 * schedules for every size, trace/decrypt consistency, and the victim
 * layout discipline the attack depends on.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <set>

#include "crypto/aes.hh"
#include "crypto/aes_codegen.hh"
#include "os/machine.hh"

using namespace uscope;
using namespace uscope::crypto;

TEST(AesTables, RotationalStructure)
{
    // Te1..Te3 are byte-rotations of Te0 (same for Td): this is the
    // OpenSSL table layout the paper's code indexes.
    const AesEncTables &te = encTables();
    const AesDecTables &td = decTables();
    auto rot8 = [](std::uint32_t w) { return (w >> 8) | (w << 24); };
    for (unsigned x = 0; x < 256; ++x) {
        EXPECT_EQ(te.te1[x], rot8(te.te0[x]));
        EXPECT_EQ(te.te2[x], rot8(te.te1[x]));
        EXPECT_EQ(te.te3[x], rot8(te.te2[x]));
        EXPECT_EQ(td.td1[x], rot8(td.td0[x]));
        EXPECT_EQ(td.td2[x], rot8(td.td1[x]));
        EXPECT_EQ(td.td3[x], rot8(td.td2[x]));
    }
}

TEST(AesTables, SboxInverseRelation)
{
    // te4 packs SBox, td4 packs InvSbox; they must invert each other.
    const AesEncTables &te = encTables();
    const AesDecTables &td = decTables();
    for (unsigned x = 0; x < 256; ++x) {
        const std::uint8_t s = static_cast<std::uint8_t>(te.te4[x]);
        const std::uint8_t back = static_cast<std::uint8_t>(td.td4[s]);
        EXPECT_EQ(back, x);
        // Replicated into all four bytes.
        EXPECT_EQ(te.te4[x], 0x01010101u * s);
    }
    // Known corner values of the AES S-box.
    EXPECT_EQ(static_cast<std::uint8_t>(te.te4[0x00]), 0x63);
    EXPECT_EQ(static_cast<std::uint8_t>(te.te4[0x01]), 0x7C);
    EXPECT_EQ(static_cast<std::uint8_t>(te.te4[0x53]), 0xED);
}

TEST(AesKeySchedule, SizesAndFirstWords)
{
    const std::uint8_t key[32] = {0, 1, 2, 3, 4, 5, 6, 7,
                                  8, 9, 10, 11, 12, 13, 14, 15,
                                  16, 17, 18, 19, 20, 21, 22, 23,
                                  24, 25, 26, 27, 28, 29, 30, 31};
    for (unsigned bits : {128u, 192u, 256u}) {
        AesKey enc(key, bits, false);
        EXPECT_EQ(enc.rounds(), bits / 32 + 6);
        EXPECT_EQ(enc.roundKeys().size(), 4 * (enc.rounds() + 1));
        // The first Nk words are the raw key, big-endian packed.
        EXPECT_EQ(enc.roundKeys()[0], 0x00010203u);
        EXPECT_EQ(enc.roundKeys()[1], 0x04050607u);
    }
}

TEST(AesKeySchedule, DecryptScheduleDiffersButInverts)
{
    const std::uint8_t key[16] = {9, 8, 7, 6, 5, 4, 3, 2,
                                  1, 0, 1, 2, 3, 4, 5, 6};
    AesKey enc(key, 128, false);
    AesKey dec(key, 128, true);
    EXPECT_NE(enc.roundKeys(), dec.roundKeys());
    // Decrypt round 0 = encrypt final-round keys (reversed order).
    for (unsigned w = 0; w < 4; ++w)
        EXPECT_EQ(dec.roundKeys()[w], enc.roundKeys()[40 + w]);
}

TEST(AesTrace, IndicesReproduceTheDecryption)
{
    // Re-computing the decryption from the trace's recorded indices
    // must give the same output as decryptBlock: the trace is a
    // faithful ground truth for the attack.
    const std::uint8_t key[16] = {3, 1, 4, 1, 5, 9, 2, 6,
                                  5, 3, 5, 8, 9, 7, 9, 3};
    AesKey enc(key, 128, false);
    AesKey dec(key, 128, true);
    std::uint8_t pt[16] = {0xAB, 0xCD};
    std::uint8_t ct[16];
    encryptBlock(enc, pt, ct);

    const DecAccessTrace trace = traceDecryption(dec, ct);
    ASSERT_EQ(trace.indices.size(), 10u);

    // Walk the inner rounds using only the recorded indices.
    const AesDecTables &t = decTables();
    const auto &rk = dec.roundKeys();
    std::uint32_t s[4];
    for (unsigned w = 0; w < 4; ++w) {
        s[w] = (std::uint32_t{ct[4 * w]} << 24) |
               (std::uint32_t{ct[4 * w + 1]} << 16) |
               (std::uint32_t{ct[4 * w + 2]} << 8) |
               std::uint32_t{ct[4 * w + 3]};
        s[w] ^= rk[w];
    }
    for (unsigned r = 1; r < 10; ++r) {
        std::uint32_t next[4];
        for (unsigned i = 0; i < 4; ++i) {
            next[i] = t.td0[trace.indices[r - 1][0][i]] ^
                      t.td1[trace.indices[r - 1][1][i]] ^
                      t.td2[trace.indices[r - 1][2][i]] ^
                      t.td3[trace.indices[r - 1][3][i]] ^
                      rk[4 * r + i];
        }
        std::memcpy(s, next, sizeof(s));
        // Cross-check: the recorded indices match the live state.
        if (r < 9) {
            EXPECT_EQ(trace.indices[r][0][0], s[0] >> 24);
            EXPECT_EQ(trace.indices[r][1][0], (s[3] >> 16) & 0xFF);
        }
    }
}

TEST(AesTrace, LineIndexMapping)
{
    EXPECT_EQ(tableLineOf(0), 0u);
    EXPECT_EQ(tableLineOf(15), 0u);
    EXPECT_EQ(tableLineOf(16), 1u);
    EXPECT_EQ(tableLineOf(255), 15u);
}

TEST(AesLayout, TablesAndKeysOnDistinctPages)
{
    // §4.4's first observation: Td0..Td3 and rk on different physical
    // pages, so an rk access and a Td0 access can play handle/pivot.
    os::Machine machine;
    auto &kernel = machine.kernel();
    const os::Pid pid = kernel.createProcess("aes");
    const std::uint8_t key[16] = {};
    AesKey dec(key, 128, true);
    const AesVictimLayout layout = setupAesVictim(kernel, pid, dec);

    std::set<Ppn> frames;
    for (unsigned table = 0; table < 5; ++table)
        frames.insert(
            pageNumber(*kernel.translate(pid, layout.tableVa(table))));
    frames.insert(pageNumber(*kernel.translate(pid, layout.rk)));
    frames.insert(pageNumber(*kernel.translate(pid, layout.input)));
    frames.insert(pageNumber(*kernel.translate(pid, layout.output)));
    EXPECT_EQ(frames.size(), 8u);  // all distinct physical pages
}

TEST(AesLayout, TableBytesMatchReference)
{
    os::Machine machine;
    auto &kernel = machine.kernel();
    const os::Pid pid = kernel.createProcess("aes");
    const std::uint8_t key[16] = {1, 2, 3};
    AesKey dec(key, 128, true);
    const AesVictimLayout layout = setupAesVictim(kernel, pid, dec);

    // The victim's in-memory Td1 must be byte-identical to the
    // reference tables: the leaked line indices then correspond.
    AesTable loaded{};
    ASSERT_TRUE(
        kernel.readVirtual(pid, layout.td1, loaded.data(), 1024));
    EXPECT_EQ(loaded, decTables().td1);

    std::array<std::uint32_t, 44> rk_loaded{};
    ASSERT_TRUE(kernel.readVirtual(pid, layout.rk, rk_loaded.data(),
                                   rk_loaded.size() * 4));
    for (unsigned w = 0; w < 44; ++w)
        EXPECT_EQ(rk_loaded[w], dec.roundKeys()[w]);
}

TEST(AesCodegen, RoundTripForAllKeySizes)
{
    for (unsigned bits : {128u, 192u, 256u}) {
        std::uint8_t key[32];
        for (unsigned i = 0; i < 32; ++i)
            key[i] = static_cast<std::uint8_t>(i * 5 + bits / 8);
        std::uint8_t pt[16];
        for (unsigned i = 0; i < 16; ++i)
            pt[i] = static_cast<std::uint8_t>(0xC0 | i);

        AesKey enc(key, bits, false);
        AesKey dec(key, bits, true);
        std::uint8_t ct[16];
        encryptBlock(enc, pt, ct);

        os::Machine machine;
        auto &kernel = machine.kernel();
        const os::Pid pid = kernel.createProcess("aes");
        const AesVictimLayout layout = setupAesVictim(kernel, pid, dec);
        loadCiphertext(kernel, pid, layout, ct);
        kernel.startOnContext(
            pid, 0,
            std::make_shared<const cpu::Program>(
                buildAesDecryptProgram(layout)));
        ASSERT_TRUE(machine.runUntilHalted(0, 10'000'000)) << bits;

        std::uint8_t out[16];
        readPlaintext(kernel, pid, layout, out);
        EXPECT_EQ(0, std::memcmp(out, pt, 16)) << bits << " bits";
    }
}
